#include "runtime/simulate.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>

// The native sweep backend lives in codegen (it owns the emitters and the
// dlopen plumbing); this .cpp-level dependency is one-way — no codegen
// header includes runtime/simulate.hpp — and keeps backend selection a
// plain SweepOptions field instead of a registration scheme.
#include "codegen/native_batch.hpp"
#include "support/check.hpp"
#include "support/step_count.hpp"
#include "support/thread_pool.hpp"

namespace amsvp::runtime {

TransientResult simulate_transient(const abstraction::SignalFlowModel& model,
                                   const std::map<std::string, numeric::SourceFunction>& stimuli,
                                   double duration_seconds, EvalStrategy strategy) {
    CompiledModel compiled(model, strategy);
    return simulate_transient(compiled, model.inputs, stimuli, duration_seconds);
}

TransientResult simulate_transient(ModelExecutor& compiled,
                                   const std::vector<expr::Symbol>& input_symbols,
                                   const std::map<std::string, numeric::SourceFunction>& stimuli,
                                   double duration_seconds) {
    compiled.reset();
    const double dt = compiled.timestep();
    AMSVP_CHECK(dt > 0.0, "model has no timestep");

    std::vector<const numeric::SourceFunction*> sources;
    sources.reserve(input_symbols.size());
    for (const expr::Symbol& in : input_symbols) {
        const auto it = stimuli.find(in.name);
        AMSVP_CHECK(it != stimuli.end(), "missing stimulus for model input");
        sources.push_back(&it->second);
    }

    const std::size_t steps = support::step_count(duration_seconds, dt);
    TransientResult result;
    result.steps = steps;
    // All backends in this library sample at t = dt, 2dt, ... so traces are
    // directly comparable.
    result.outputs.assign(compiled.output_count(), numeric::Waveform(dt, dt));
    for (auto& w : result.outputs) {
        w.reserve(steps);
    }

    for (std::size_t k = 0; k < steps; ++k) {
        const double t = static_cast<double>(k + 1) * dt;
        for (std::size_t i = 0; i < sources.size(); ++i) {
            compiled.set_input(i, (*sources[i])(t));
        }
        compiled.step(t);
        for (std::size_t o = 0; o < result.outputs.size(); ++o) {
            result.outputs[o].append(compiled.output(o));
        }
    }
    return result;
}

SweepResult simulate_sweep(const abstraction::SignalFlowModel& model,
                           const std::map<std::string, numeric::SourceFunction>& shared_stimuli,
                           const std::vector<SweepLane>& lanes, double duration_seconds,
                           const SweepOptions& options) {
    if (options.backend == SweepBackend::kNative) {
        std::string error;
        if (auto native = codegen::NativeBatchModel::compile(
                model, static_cast<int>(lanes.size()), &error)) {
            return simulate_sweep(*native, model.inputs, shared_stimuli, lanes,
                                  duration_seconds, options);
        }
        // atomic: concurrent sweeps may hit the fallback simultaneously.
        static std::atomic<bool> warned{false};
        if (!warned.exchange(true)) {
            std::fprintf(stderr,
                         "amsvp: native sweep backend unavailable (%s); "
                         "falling back to the batch interpreter\n",
                         error.c_str());
        }
    }
    BatchCompiledModel batch(model, static_cast<int>(lanes.size()));
    return simulate_sweep(batch, model.inputs, shared_stimuli, lanes, duration_seconds,
                          options);
}

namespace {

/// True when the move from `anchor` to `value` is within the steady band. A
/// diverged (non-finite) value is never steady: |inf - x| <= inf would
/// otherwise retire a blown-up lane as "settled". The relative tolerance
/// scales with the *larger* endpoint magnitude: a lane decaying toward zero
/// from a large anchor keeps the band of the magnitude it is leaving,
/// instead of the band collapsing with |value| and judging the tail of the
/// decay ever more strictly than its start.
bool within_steady_band(double value, double anchor, double tolerance) {
    return std::isfinite(value) &&
           std::fabs(value - anchor) <=
               tolerance * std::max({1.0, std::fabs(value), std::fabs(anchor)});
}

/// Step one contiguous shard of sweep lanes to completion. This is the
/// whole sweep engine — the single-threaded path runs it once over all
/// lanes, the worker-pool path runs it once per shard — so both paths are
/// the same code and bit-identical by construction (lane results do not
/// depend on batch width; see batch_model_test). It drives the abstract
/// BatchExecutor surface, so the same loop serves the fused interpreter
/// and the dlopen'ed native kernel.
///
///  - `batch` is the shard's own executor (width == the shard's lane
///    count), already reset with per-lane overrides applied.
///  - `sources` are the input-major stimulus rows over ALL sweep lanes
///    (row stride `source_stride`); the shard reads the columns
///    [lane_begin, lane_begin + batch.batch()).
///  - `outputs` holds one WaveformBatch per model output, sized to the
///    shard's lane count; `settled_at` points at the shard's slice of the
///    result (batch.batch() entries, pre-filled with `steps`).
void run_sweep_shard(BatchExecutor& batch,
                     const numeric::SourceFunction* const* sources,
                     std::size_t source_stride, std::size_t lane_begin,
                     std::size_t n_inputs, std::size_t steps, double dt,
                     const SweepOptions& options,
                     std::vector<numeric::WaveformBatch>& outputs,
                     std::size_t* settled_at) {
    const std::size_t n_outputs = outputs.size();
    const bool detect = options.steady_tolerance > 0.0;
    if (!detect) {
        const int nlanes = batch.batch();
        for (std::size_t k = 0; k < steps; ++k) {
            const double t = static_cast<double>(k + 1) * dt;
            for (std::size_t i = 0; i < n_inputs; ++i) {
                const numeric::SourceFunction* const* row =
                    sources + i * source_stride + lane_begin;
                for (int l = 0; l < nlanes; ++l) {
                    batch.set_input(l, i, (*row[l])(t));
                }
            }
            batch.step(t);
            for (std::size_t o = 0; o < n_outputs; ++o) {
                outputs[o].append_frame(batch.output_lanes(o));
            }
        }
        return;
    }

    // Steady-state detection: lanes that settle are retired and the shard
    // compacts in place, so the per-step cost tracks the *surviving* lane
    // count. `origin[pos]` maps a current batch position back to its
    // shard-local lane; retired lanes' frames hold the settled value.
    const std::size_t n_lanes = static_cast<std::size_t>(batch.batch());
    std::vector<int> origin(n_lanes);
    for (std::size_t l = 0; l < n_lanes; ++l) {
        origin[l] = static_cast<int>(l);
    }
    std::vector<std::vector<double>> frame(n_outputs, std::vector<double>(n_lanes, 0.0));
    /// Streak anchor: each output's value when the lane's current quiet
    /// streak started. Comparing against the anchor (not the previous
    /// step) bounds the total drift over the whole window by the steady
    /// band — a merely slow transient (per-step move below tolerance but
    /// steadily accumulating) cannot false-settle.
    std::vector<std::vector<double>> anchor(n_outputs, std::vector<double>(n_lanes, 0.0));
    std::vector<int> quiet_steps(n_lanes, 0);  ///< consecutive in-band steps per lane
    std::vector<int> keep;                     ///< scratch for compact_lanes

    for (std::size_t k = 0; k < steps; ++k) {
        const double t = static_cast<double>(k + 1) * dt;
        const int active = batch.batch();
        for (std::size_t i = 0; i < n_inputs; ++i) {
            const numeric::SourceFunction* const* row =
                sources + i * source_stride + lane_begin;
            for (int pos = 0; pos < active; ++pos) {
                batch.set_input(pos, i, (*row[origin[static_cast<std::size_t>(pos)]])(t));
            }
        }
        batch.step(t);
        for (std::size_t o = 0; o < n_outputs; ++o) {
            const double* values = batch.output_lanes(o);
            for (int pos = 0; pos < active; ++pos) {
                frame[o][static_cast<std::size_t>(origin[static_cast<std::size_t>(pos)])] =
                    values[pos];
            }
            outputs[o].append_frame(frame[o].data());
        }

        // Settle check against the streak anchor (first step only seeds it).
        bool any_settled = false;
        for (int pos = 0; pos < active; ++pos) {
            const auto lane = static_cast<std::size_t>(origin[static_cast<std::size_t>(pos)]);
            bool quiet = k > 0;
            for (std::size_t o = 0; quiet && o < n_outputs; ++o) {
                quiet = within_steady_band(frame[o][lane], anchor[o][lane],
                                           options.steady_tolerance);
            }
            if (quiet) {
                ++quiet_steps[lane];
            } else {
                quiet_steps[lane] = 0;
                for (std::size_t o = 0; o < n_outputs; ++o) {
                    anchor[o][lane] = frame[o][lane];
                }
            }
            if (quiet_steps[lane] >= options.steady_window) {
                settled_at[lane] = k + 1;
                any_settled = true;
            }
        }
        if (!any_settled) {
            continue;
        }
        keep.clear();
        for (int pos = 0; pos < active; ++pos) {
            if (settled_at[static_cast<std::size_t>(origin[static_cast<std::size_t>(pos)])] ==
                steps) {
                keep.push_back(pos);
            }
        }
        if (keep.empty()) {
            // Everything settled: pad the remaining samples with the held
            // frames so waveform lengths stay uniform, and stop stepping.
            for (std::size_t pad = k + 1; pad < steps; ++pad) {
                for (std::size_t o = 0; o < n_outputs; ++o) {
                    outputs[o].append_frame(frame[o].data());
                }
            }
            break;
        }
        if (static_cast<int>(keep.size()) < active) {
            batch.compact_lanes(keep);
            for (std::size_t j = 0; j < keep.size(); ++j) {
                origin[j] = origin[static_cast<std::size_t>(keep[j])];
            }
            origin.resize(keep.size());
        }
    }
}

/// Resolve SweepOptions::threads: 0 means "all hardware threads".
int resolve_threads(int requested) {
    AMSVP_CHECK(requested >= 0, "SweepOptions::threads must be >= 0");
    return requested == 0 ? support::ThreadPool::hardware_threads() : requested;
}

}  // namespace

SweepResult simulate_sweep(BatchExecutor& batch,
                           const std::vector<expr::Symbol>& input_symbols,
                           const std::map<std::string, numeric::SourceFunction>& shared_stimuli,
                           const std::vector<SweepLane>& lanes, double duration_seconds,
                           const SweepOptions& options) {
    AMSVP_CHECK(!lanes.empty(), "sweep needs at least one lane");
    // reset() first: it restores the constructed width if a previous sweep's
    // steady-state retirement compacted the batch, so reuse just works.
    batch.reset();
    AMSVP_CHECK(batch.batch() == static_cast<int>(lanes.size()),
                "batch width must match the lane count");
    const double dt = batch.timestep();
    AMSVP_CHECK(dt > 0.0, "model has no timestep");

    // Per (input, lane) stimulus: the lane's own override or the shared one.
    std::vector<const numeric::SourceFunction*> sources;
    sources.reserve(input_symbols.size() * lanes.size());
    for (const expr::Symbol& in : input_symbols) {
        for (const SweepLane& lane : lanes) {
            auto it = lane.stimuli.find(in.name);
            if (it == lane.stimuli.end()) {
                it = shared_stimuli.find(in.name);
                AMSVP_CHECK(it != shared_stimuli.end(), "missing stimulus for model input");
            }
            sources.push_back(&it->second);
        }
    }

    const std::size_t steps = support::step_count(duration_seconds, dt);
    const std::size_t n_lanes = lanes.size();
    const std::size_t n_outputs = batch.output_count();
    SweepResult result;
    result.steps = steps;
    result.settled_at.assign(n_lanes, steps);

    if (options.steady_tolerance > 0.0) {
        AMSVP_CHECK(options.steady_window >= 1, "steady_window must be at least one step");
    }

    const int threads = resolve_threads(options.threads);
    const std::vector<BatchCompiledModel::LaneRange> shards =
        threads > 1 ? BatchCompiledModel::shard_lanes(static_cast<int>(n_lanes), threads)
                    : std::vector<BatchCompiledModel::LaneRange>{
                          {0, static_cast<int>(n_lanes)}};

    if (shards.size() == 1) {
        // Single-threaded: the caller's batch *is* the one shard.
        for (std::size_t l = 0; l < n_lanes; ++l) {
            for (const auto& [symbol, value] : lanes[l].overrides) {
                batch.set_value(static_cast<int>(l), symbol, value);
            }
        }
        result.outputs.assign(n_outputs, numeric::WaveformBatch(n_lanes, dt, dt));
        for (auto& w : result.outputs) {
            w.reserve(steps);
        }
        run_sweep_shard(batch, sources.data(), n_lanes, 0, input_symbols.size(), steps, dt,
                        options, result.outputs, result.settled_at.data());
        return result;
    }

    // Worker-pool mode: each shard is its own executor over the shared
    // compile artifact — make_shard keeps the backend, so native sweeps
    // shard through the same dlopen'ed kernel — stepped by one worker; no
    // mutable state is shared between shards, so the only synchronization
    // is the join. The caller's full-width batch is left reset and
    // untouched.
    struct Shard {
        std::unique_ptr<BatchExecutor> model;
        std::vector<numeric::WaveformBatch> outputs;
        BatchCompiledModel::LaneRange range;
    };
    std::vector<Shard> work;
    work.reserve(shards.size());
    for (const BatchCompiledModel::LaneRange& range : shards) {
        work.push_back(Shard{batch.make_shard(range.count),
                             std::vector<numeric::WaveformBatch>(
                                 n_outputs, numeric::WaveformBatch(
                                                static_cast<std::size_t>(range.count), dt, dt)),
                             range});
        Shard& shard = work.back();
        for (auto& w : shard.outputs) {
            w.reserve(steps);
        }
        for (int j = 0; j < range.count; ++j) {
            const auto lane = static_cast<std::size_t>(range.begin + j);
            for (const auto& [symbol, value] : lanes[lane].overrides) {
                shard.model->set_value(j, symbol, value);
            }
        }
    }

    support::ThreadPool pool(static_cast<int>(work.size()));
    pool.run(static_cast<int>(work.size()), [&](int s) {
        Shard& shard = work[static_cast<std::size_t>(s)];
        run_sweep_shard(*shard.model, sources.data(), n_lanes,
                        static_cast<std::size_t>(shard.range.begin), input_symbols.size(),
                        steps, dt, options, shard.outputs,
                        result.settled_at.data() + shard.range.begin);
    });

    // Merge the per-shard captures in lane order: global frame k is the
    // concatenation of every shard's frame k, one row copy per shard.
    result.outputs.assign(n_outputs, numeric::WaveformBatch(n_lanes, dt, dt));
    std::vector<double> frame(n_lanes, 0.0);
    for (std::size_t o = 0; o < n_outputs; ++o) {
        result.outputs[o].reserve(steps);
        for (std::size_t k = 0; k < steps; ++k) {
            for (const Shard& shard : work) {
                std::memcpy(frame.data() + shard.range.begin,
                            shard.outputs[o].frame_data(k),
                            static_cast<std::size_t>(shard.range.count) * sizeof(double));
            }
            result.outputs[o].append_frame(frame.data());
        }
    }
    return result;
}

}  // namespace amsvp::runtime
