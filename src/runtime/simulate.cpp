#include "runtime/simulate.hpp"

#include "support/check.hpp"

namespace amsvp::runtime {

TransientResult simulate_transient(const abstraction::SignalFlowModel& model,
                                   const std::map<std::string, numeric::SourceFunction>& stimuli,
                                   double duration_seconds, EvalStrategy strategy) {
    CompiledModel compiled(model, strategy);
    return simulate_transient(compiled, model.inputs, stimuli, duration_seconds);
}

TransientResult simulate_transient(ModelExecutor& compiled,
                                   const std::vector<expr::Symbol>& input_symbols,
                                   const std::map<std::string, numeric::SourceFunction>& stimuli,
                                   double duration_seconds) {
    compiled.reset();
    const double dt = compiled.timestep();
    AMSVP_CHECK(dt > 0.0, "model has no timestep");

    std::vector<const numeric::SourceFunction*> sources;
    sources.reserve(input_symbols.size());
    for (const expr::Symbol& in : input_symbols) {
        const auto it = stimuli.find(in.name);
        AMSVP_CHECK(it != stimuli.end(), "missing stimulus for model input");
        sources.push_back(&it->second);
    }

    const auto steps = static_cast<std::size_t>(duration_seconds / dt);
    TransientResult result;
    result.steps = steps;
    // All backends in this library sample at t = dt, 2dt, ... so traces are
    // directly comparable.
    result.outputs.assign(compiled.output_count(), numeric::Waveform(dt, dt));
    for (auto& w : result.outputs) {
        w.reserve(steps);
    }

    for (std::size_t k = 0; k < steps; ++k) {
        const double t = static_cast<double>(k + 1) * dt;
        for (std::size_t i = 0; i < sources.size(); ++i) {
            compiled.set_input(i, (*sources[i])(t));
        }
        compiled.step(t);
        for (std::size_t o = 0; o < result.outputs.size(); ++o) {
            result.outputs[o].append(compiled.output(o));
        }
    }
    return result;
}

}  // namespace amsvp::runtime
