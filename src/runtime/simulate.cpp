#include "runtime/simulate.hpp"

#include "support/check.hpp"

namespace amsvp::runtime {

TransientResult simulate_transient(const abstraction::SignalFlowModel& model,
                                   const std::map<std::string, numeric::SourceFunction>& stimuli,
                                   double duration_seconds, EvalStrategy strategy) {
    CompiledModel compiled(model, strategy);
    return simulate_transient(compiled, model.inputs, stimuli, duration_seconds);
}

TransientResult simulate_transient(ModelExecutor& compiled,
                                   const std::vector<expr::Symbol>& input_symbols,
                                   const std::map<std::string, numeric::SourceFunction>& stimuli,
                                   double duration_seconds) {
    compiled.reset();
    const double dt = compiled.timestep();
    AMSVP_CHECK(dt > 0.0, "model has no timestep");

    std::vector<const numeric::SourceFunction*> sources;
    sources.reserve(input_symbols.size());
    for (const expr::Symbol& in : input_symbols) {
        const auto it = stimuli.find(in.name);
        AMSVP_CHECK(it != stimuli.end(), "missing stimulus for model input");
        sources.push_back(&it->second);
    }

    const auto steps = static_cast<std::size_t>(duration_seconds / dt);
    TransientResult result;
    result.steps = steps;
    // All backends in this library sample at t = dt, 2dt, ... so traces are
    // directly comparable.
    result.outputs.assign(compiled.output_count(), numeric::Waveform(dt, dt));
    for (auto& w : result.outputs) {
        w.reserve(steps);
    }

    for (std::size_t k = 0; k < steps; ++k) {
        const double t = static_cast<double>(k + 1) * dt;
        for (std::size_t i = 0; i < sources.size(); ++i) {
            compiled.set_input(i, (*sources[i])(t));
        }
        compiled.step(t);
        for (std::size_t o = 0; o < result.outputs.size(); ++o) {
            result.outputs[o].append(compiled.output(o));
        }
    }
    return result;
}

SweepResult simulate_sweep(const abstraction::SignalFlowModel& model,
                           const std::map<std::string, numeric::SourceFunction>& shared_stimuli,
                           const std::vector<SweepLane>& lanes, double duration_seconds) {
    BatchCompiledModel batch(model, static_cast<int>(lanes.size()));
    return simulate_sweep(batch, model.inputs, shared_stimuli, lanes, duration_seconds);
}

SweepResult simulate_sweep(BatchCompiledModel& batch,
                           const std::vector<expr::Symbol>& input_symbols,
                           const std::map<std::string, numeric::SourceFunction>& shared_stimuli,
                           const std::vector<SweepLane>& lanes, double duration_seconds) {
    AMSVP_CHECK(!lanes.empty(), "sweep needs at least one lane");
    AMSVP_CHECK(batch.batch() == static_cast<int>(lanes.size()),
                "batch width must match the lane count");
    batch.reset();
    const double dt = batch.timestep();
    AMSVP_CHECK(dt > 0.0, "model has no timestep");

    // Per (input, lane) stimulus: the lane's own override or the shared one.
    std::vector<const numeric::SourceFunction*> sources;
    sources.reserve(input_symbols.size() * lanes.size());
    for (const expr::Symbol& in : input_symbols) {
        for (const SweepLane& lane : lanes) {
            auto it = lane.stimuli.find(in.name);
            if (it == lane.stimuli.end()) {
                it = shared_stimuli.find(in.name);
                AMSVP_CHECK(it != shared_stimuli.end(), "missing stimulus for model input");
            }
            sources.push_back(&it->second);
        }
    }
    for (std::size_t l = 0; l < lanes.size(); ++l) {
        for (const auto& [symbol, value] : lanes[l].overrides) {
            batch.set_value(static_cast<int>(l), symbol, value);
        }
    }

    const auto steps = static_cast<std::size_t>(duration_seconds / dt);
    SweepResult result;
    result.steps = steps;
    result.outputs.assign(batch.output_count(),
                          numeric::WaveformBatch(lanes.size(), dt, dt));
    for (auto& w : result.outputs) {
        w.reserve(steps);
    }

    const int nlanes = batch.batch();
    for (std::size_t k = 0; k < steps; ++k) {
        const double t = static_cast<double>(k + 1) * dt;
        const numeric::SourceFunction* const* src = sources.data();
        for (std::size_t i = 0; i < input_symbols.size(); ++i) {
            for (int l = 0; l < nlanes; ++l) {
                batch.set_input(l, i, (**src++)(t));
            }
        }
        batch.step(t);
        for (std::size_t o = 0; o < result.outputs.size(); ++o) {
            result.outputs[o].append_frame(batch.output_lanes(o));
        }
    }
    return result;
}

}  // namespace amsvp::runtime
