#include "runtime/executor.hpp"

#include "runtime/compiled_model.hpp"
#include "support/check.hpp"

namespace amsvp::runtime {

ExecutorFactory bytecode_executor_factory() {
    return [](const abstraction::SignalFlowModel& model) -> std::unique_ptr<ModelExecutor> {
        return std::make_unique<CompiledModel>(model, EvalStrategy::kBytecode);
    };
}

ExecutorFactory fused_executor_factory() {
    return [](const abstraction::SignalFlowModel& model) -> std::unique_ptr<ModelExecutor> {
        return std::make_unique<CompiledModel>(model, EvalStrategy::kFused);
    };
}

ExecutorFactory shared_layout_executor_factory(std::shared_ptr<const ModelLayout> layout) {
    AMSVP_CHECK(layout != nullptr, "shared-layout factory needs a layout");
    return [layout](const abstraction::SignalFlowModel&) -> std::unique_ptr<ModelExecutor> {
        return std::make_unique<CompiledModel>(layout);
    };
}

}  // namespace amsvp::runtime
