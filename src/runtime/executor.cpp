#include "runtime/executor.hpp"

#include "runtime/compiled_model.hpp"

namespace amsvp::runtime {

ExecutorFactory bytecode_executor_factory() {
    return [](const abstraction::SignalFlowModel& model) -> std::unique_ptr<ModelExecutor> {
        return std::make_unique<CompiledModel>(model, EvalStrategy::kBytecode);
    };
}

ExecutorFactory fused_executor_factory() {
    return [](const abstraction::SignalFlowModel& model) -> std::unique_ptr<ModelExecutor> {
        return std::make_unique<CompiledModel>(model, EvalStrategy::kFused);
    };
}

}  // namespace amsvp::runtime
