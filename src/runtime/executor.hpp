// Abstract execution interface for signal-flow models.
//
// Two implementations exist:
//  * runtime::CompiledModel — in-process bytecode (always available);
//  * codegen::NativeModel   — the generated C++ compiled by the system
//    compiler and loaded via dlopen (the paper's actual deployment path).
//
// Backends accept a factory so benchmarks can swap the execution strategy
// without touching the MoC wrappers.
#pragma once

#include <functional>
#include <memory>

#include "abstraction/signal_flow_model.hpp"

namespace amsvp::runtime {

class ModelExecutor {
public:
    virtual ~ModelExecutor() = default;

    virtual void reset() = 0;
    virtual void set_input(std::size_t index, double value) = 0;
    virtual void step(double time_seconds) = 0;
    [[nodiscard]] virtual double output(std::size_t index) const = 0;
    [[nodiscard]] virtual std::size_t input_count() const = 0;
    [[nodiscard]] virtual std::size_t output_count() const = 0;
    [[nodiscard]] virtual double timestep() const = 0;
};

using ExecutorFactory =
    std::function<std::unique_ptr<ModelExecutor>(const abstraction::SignalFlowModel&)>;

class ModelLayout;

/// Factory producing the in-process stack-bytecode executor (baseline).
[[nodiscard]] ExecutorFactory bytecode_executor_factory();

/// Factory producing the fused register-machine executor (default hot path).
[[nodiscard]] ExecutorFactory fused_executor_factory();

/// Factory whose executors all share one pre-compiled layout: N scalar
/// instances, one compile. The model argument each call receives is
/// ignored — it must be the model `layout` was compiled from.
[[nodiscard]] ExecutorFactory shared_layout_executor_factory(
    std::shared_ptr<const ModelLayout> layout);

}  // namespace amsvp::runtime
