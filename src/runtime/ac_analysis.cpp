#include "runtime/ac_analysis.hpp"

#include <cmath>

#include "runtime/compiled_model.hpp"
#include "support/check.hpp"

namespace amsvp::runtime {

std::vector<double> log_frequency_grid(double f_min, double f_max, int points) {
    AMSVP_CHECK(f_min > 0.0 && f_max > f_min && points >= 2, "bad frequency grid");
    std::vector<double> out;
    out.reserve(static_cast<std::size_t>(points));
    const double ratio = std::log(f_max / f_min);
    for (int i = 0; i < points; ++i) {
        const double w = static_cast<double>(i) / static_cast<double>(points - 1);
        out.push_back(f_min * std::exp(ratio * w));
    }
    return out;
}

std::vector<AcPoint> measure_frequency_response(const abstraction::SignalFlowModel& model,
                                                const std::string& input_name,
                                                const std::vector<double>& frequencies_hz,
                                                const AcOptions& options) {
    CompiledModel compiled(model);
    const std::size_t input = compiled.input_index(input_name);
    const double dt = model.timestep;
    AMSVP_CHECK(dt > 0.0, "model has no timestep");

    std::vector<AcPoint> out;
    out.reserve(frequencies_hz.size());
    for (const double f : frequencies_hz) {
        AMSVP_CHECK(f > 0.0 && f < 0.25 / dt, "frequency outside the model's band");
        const double omega = 2.0 * M_PI * f;
        const auto steps_per_cycle = static_cast<std::uint64_t>(1.0 / (f * dt) + 0.5);
        const std::uint64_t settle =
            steps_per_cycle * static_cast<std::uint64_t>(options.settle_cycles);
        const std::uint64_t window =
            steps_per_cycle * static_cast<std::uint64_t>(options.measure_cycles);

        compiled.reset();
        // Other inputs (if any) held at zero: small-signal measurement.
        for (std::size_t i = 0; i < compiled.input_count(); ++i) {
            compiled.set_input(i, 0.0);
        }

        double acc_cos = 0.0;
        double acc_sin = 0.0;
        for (std::uint64_t k = 1; k <= settle + window; ++k) {
            const double t = static_cast<double>(k) * dt;
            compiled.set_input(input, options.amplitude * std::sin(omega * t));
            compiled.step(t);
            if (k > settle) {
                const double y = compiled.output(0);
                acc_sin += y * std::sin(omega * t);
                acc_cos += y * std::cos(omega * t);
            }
        }
        // Single-bin DFT against the drive: y ~ A sin(wt) + B cos(wt).
        const double n = static_cast<double>(window);
        const double a = 2.0 * acc_sin / n;
        const double b = 2.0 * acc_cos / n;
        AcPoint point;
        point.frequency_hz = f;
        point.magnitude = std::sqrt(a * a + b * b) / options.amplitude;
        point.phase_radians = std::atan2(b, a);
        out.push_back(point);
    }
    return out;
}

}  // namespace amsvp::runtime
