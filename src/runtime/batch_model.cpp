#include "runtime/batch_model.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "support/check.hpp"

namespace amsvp::runtime {

std::vector<BatchCompiledModel::LaneRange> BatchCompiledModel::shard_lanes(int lanes,
                                                                           int max_shards) {
    AMSVP_CHECK(lanes >= 1, "shard_lanes needs at least one lane");
    AMSVP_CHECK(max_shards >= 1, "shard_lanes needs at least one shard");
    // Distribute whole lane chunks as evenly as possible; the last shard
    // absorbs the sub-chunk tail.
    const int chunks = (lanes + kLaneChunk - 1) / kLaneChunk;
    const int shards = std::min(max_shards, chunks);
    std::vector<LaneRange> ranges;
    ranges.reserve(static_cast<std::size_t>(shards));
    int chunk_begin = 0;
    for (int s = 0; s < shards; ++s) {
        const int chunk_count = chunks / shards + (s < chunks % shards ? 1 : 0);
        const int begin = chunk_begin * kLaneChunk;
        const int end = std::min((chunk_begin + chunk_count) * kLaneChunk, lanes);
        ranges.push_back(LaneRange{begin, end - begin});
        chunk_begin += chunk_count;
    }
    return ranges;
}

BatchCompiledModel::BatchCompiledModel(std::shared_ptr<const ModelLayout> layout, int batch)
    : layout_(std::move(layout)), batch_(batch), constructed_batch_(batch) {
    AMSVP_CHECK(layout_ != nullptr, "BatchCompiledModel needs a layout");
    AMSVP_CHECK(batch_ >= 1, "batch needs at least one lane");
    AMSVP_CHECK(layout_->strategy() == EvalStrategy::kFused,
                "batch execution runs on the fused strategy");
    slots_.assign(layout_->slot_count() * static_cast<std::size_t>(batch_), 0.0);
    reset();
}

BatchCompiledModel::BatchCompiledModel(const abstraction::SignalFlowModel& model, int batch)
    : BatchCompiledModel(ModelLayout::compile(model, EvalStrategy::kFused), batch) {}

void BatchCompiledModel::reset() {
    // Undo any compact_lanes narrowing: a reused batch object must run the
    // width it was constructed with, not whatever the previous sweep
    // happened to retire down to.
    if (batch_ != constructed_batch_) {
        batch_ = constructed_batch_;
        slots_.resize(layout_->slot_count() * static_cast<std::size_t>(batch_));
    }
    std::fill(slots_.begin(), slots_.end(), 0.0);
    for (const auto& [slot, value] : layout_->initial_values()) {
        double* lane = slots_.data() + at(slot, 0);
        for (int l = 0; l < batch_; ++l) {
            lane[l] = value;
        }
    }
    layout_->fused_program().initialize_constants_batch(slots_.data(), batch_);
}

void BatchCompiledModel::set_input(int lane, std::size_t index, double value) {
    AMSVP_CHECK(lane >= 0 && lane < batch_, "lane out of range");
    AMSVP_CHECK(index < layout_->input_count(), "input index out of range");
    slots_[at(layout_->input_slots()[index], lane)] = value;
}

void BatchCompiledModel::broadcast_input(std::size_t index, double value) {
    AMSVP_CHECK(index < layout_->input_count(), "input index out of range");
    double* lane = slots_.data() + at(layout_->input_slots()[index], 0);
    for (int l = 0; l < batch_; ++l) {
        lane[l] = value;
    }
}

void BatchCompiledModel::set_value(int lane, const expr::Symbol& symbol, double value) {
    AMSVP_CHECK(lane >= 0 && lane < batch_, "lane out of range");
    const ModelLayout::SymbolSlots& s = layout_->slots_of(symbol);
    for (int k = 0; k <= s.depth; ++k) {
        slots_[at(s.base + k, lane)] = value;
    }
}

void BatchCompiledModel::step(double time_seconds) {
    double* slots = slots_.data();
    double* time_lane = slots + at(layout_->time_slot(), 0);
    for (int l = 0; l < batch_; ++l) {
        time_lane[l] = time_seconds;
    }
    layout_->fused_program().execute_batch(slots, batch_);
    // Rotate history: each slot row is lane-contiguous, so one row copy
    // rotates the whole batch.
    const std::size_t row = static_cast<std::size_t>(batch_) * sizeof(double);
    for (const ModelLayout::SymbolSlots& r : layout_->rotations()) {
        for (int k = r.depth; k >= 1; --k) {
            std::memcpy(slots + at(r.base + k, 0), slots + at(r.base + k - 1, 0), row);
        }
    }
}

double BatchCompiledModel::output(int lane, std::size_t index) const {
    AMSVP_CHECK(lane >= 0 && lane < batch_, "lane out of range");
    AMSVP_CHECK(index < layout_->output_count(), "output index out of range");
    return slots_[at(layout_->output_slots()[index], lane)];
}

const double* BatchCompiledModel::output_lanes(std::size_t index) const {
    AMSVP_CHECK(index < layout_->output_count(), "output index out of range");
    return slots_.data() + at(layout_->output_slots()[index], 0);
}

void BatchCompiledModel::compact_lanes(const std::vector<int>& keep) {
    AMSVP_CHECK(!keep.empty(), "compact_lanes needs at least one surviving lane");
    for (std::size_t j = 0; j < keep.size(); ++j) {
        AMSVP_CHECK(keep[j] >= 0 && keep[j] < batch_, "kept lane out of range");
        AMSVP_CHECK(j == 0 || keep[j] > keep[j - 1], "kept lanes must be strictly ascending");
    }
    const int old_batch = batch_;
    const int new_batch = static_cast<int>(keep.size());
    if (new_batch == old_batch) {
        return;  // nothing retired
    }
    // Forward re-stride is safe in place: the write index i*new + j never
    // exceeds the read index i*old + keep[j] (new <= old, j <= keep[j]),
    // and both advance monotonically.
    const std::size_t slot_count = slots_.size() / static_cast<std::size_t>(old_batch);
    for (std::size_t i = 0; i < slot_count; ++i) {
        const double* src = slots_.data() + i * static_cast<std::size_t>(old_batch);
        double* dst = slots_.data() + i * static_cast<std::size_t>(new_batch);
        for (int j = 0; j < new_batch; ++j) {
            dst[j] = src[keep[static_cast<std::size_t>(j)]];
        }
    }
    batch_ = new_batch;
    slots_.resize(slot_count * static_cast<std::size_t>(new_batch));
}

void BatchCompiledModel::scan_lane_health(double divergence_limit,
                                          std::vector<LaneStatus>& status) const {
    status.assign(static_cast<std::size_t>(batch_), LaneStatus::kOk);
    const std::size_t slot_count = layout_->slot_count();
    const std::size_t lanes = static_cast<std::size_t>(batch_);
    const double* slots = slots_.data();
    // Branch-free accumulation so the compiler vectorizes across lanes:
    // v - v is 0 for every finite value and NaN for NaN/±inf, so nan_acc
    // goes (and stays) NaN the moment any of the lane's slots is bad; mag
    // tracks the lane's peak magnitude for the divergence check. The two
    // small allocations happen once per scan (every lane_health_interval
    // steps), noise next to the pass itself.
    std::vector<double> nan_acc(lanes, 0.0);
    if (divergence_limit > 0.0) {
        std::vector<double> mag(lanes, 0.0);
        for (std::size_t i = 0; i < slot_count; ++i) {
            const double* row = slots + i * lanes;
            for (std::size_t l = 0; l < lanes; ++l) {
                const double v = row[l];
                nan_acc[l] += v - v;
                const double a = std::fabs(v);
                mag[l] = mag[l] > a ? mag[l] : a;
            }
        }
        for (std::size_t l = 0; l < lanes; ++l) {
            if (nan_acc[l] != 0.0) {
                status[l] = LaneStatus::kNonFinite;
            } else if (mag[l] > divergence_limit) {
                status[l] = LaneStatus::kDiverged;
            }
        }
        return;
    }
    // Default path (non-finite only): one add and one subtract per slot.
    for (std::size_t i = 0; i < slot_count; ++i) {
        const double* row = slots + i * lanes;
        for (std::size_t l = 0; l < lanes; ++l) {
            nan_acc[l] += row[l] - row[l];
        }
    }
    for (std::size_t l = 0; l < lanes; ++l) {
        if (nan_acc[l] != 0.0) {
            status[l] = LaneStatus::kNonFinite;
        }
    }
}

std::unique_ptr<BatchExecutor> BatchCompiledModel::make_shard(int lane_count) const {
    return std::make_unique<BatchCompiledModel>(layout_, lane_count);
}

double BatchCompiledModel::value_of(int lane, const expr::Symbol& symbol) const {
    AMSVP_CHECK(lane >= 0 && lane < batch_, "lane out of range");
    return slots_[at(layout_->slot_for(symbol, 0), lane)];
}

}  // namespace amsvp::runtime
