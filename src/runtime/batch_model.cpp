#include "runtime/batch_model.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "support/check.hpp"

namespace amsvp::runtime {

std::vector<BatchCompiledModel::LaneRange> BatchCompiledModel::shard_lanes(int lanes,
                                                                           int max_shards) {
    AMSVP_CHECK(lanes >= 1, "shard_lanes needs at least one lane");
    AMSVP_CHECK(max_shards >= 1, "shard_lanes needs at least one shard");
    // Distribute whole lane chunks as evenly as possible; the last shard
    // absorbs the sub-chunk tail.
    const int chunks = (lanes + kLaneChunk - 1) / kLaneChunk;
    const int shards = std::min(max_shards, chunks);
    std::vector<LaneRange> ranges;
    ranges.reserve(static_cast<std::size_t>(shards));
    int chunk_begin = 0;
    for (int s = 0; s < shards; ++s) {
        const int chunk_count = chunks / shards + (s < chunks % shards ? 1 : 0);
        const int begin = chunk_begin * kLaneChunk;
        const int end = std::min((chunk_begin + chunk_count) * kLaneChunk, lanes);
        // A shard boundary inside a vector row would force both neighbours
        // into misaligned tails; chunk arithmetic keeps every interior
        // boundary row-aligned (only the global tail may be sub-row).
        AMSVP_CHECK(begin % LaneLayout::kVectorRow == 0,
                    "shard boundary must be vector-row aligned");
        ranges.push_back(LaneRange{begin, end - begin});
        chunk_begin += chunk_count;
    }
    return ranges;
}

BatchCompiledModel::BatchCompiledModel(std::shared_ptr<const ModelLayout> layout, int batch)
    : layout_(std::move(layout)), batch_(batch), constructed_batch_(batch) {
    AMSVP_CHECK(layout_ != nullptr, "BatchCompiledModel needs a layout");
    AMSVP_CHECK(batch_ >= 1, "batch needs at least one lane");
    AMSVP_CHECK(layout_->strategy() == EvalStrategy::kFused,
                "batch execution runs on the fused strategy");
    slots_.assign(LaneLayout::slot_file_size(layout_->slot_count(), batch_), 0.0);
    reset();
}

BatchCompiledModel::BatchCompiledModel(const abstraction::SignalFlowModel& model, int batch)
    : BatchCompiledModel(ModelLayout::compile(model, EvalStrategy::kFused), batch) {}

void BatchCompiledModel::reset() {
    // Undo any compact_lanes narrowing: a reused batch object must run the
    // width it was constructed with, not whatever the previous sweep
    // happened to retire down to.
    if (batch_ != constructed_batch_) {
        batch_ = constructed_batch_;
        slots_.resize(LaneLayout::slot_file_size(layout_->slot_count(), batch_));
    }
    // Zero-fill, then broadcast initial values and constants across the
    // whole padded rows: the padding columns are ghost lanes — the dynamic
    // batch kernels compute them alongside the live lanes (no scalar tail),
    // so they start from the same state a real lane would. Their results
    // are never observed: outputs, health scans and compaction read the
    // live lanes only.
    std::fill(slots_.begin(), slots_.end(), 0.0);
    const int padded = LaneLayout::padded_width(batch_);
    for (const auto& [slot, value] : layout_->initial_values()) {
        double* lane = slot_row(slot);
        for (int l = 0; l < padded; ++l) {
            lane[l] = value;
        }
    }
    layout_->fused_program().initialize_constants_batch(slots_.data(), batch_);
}

void BatchCompiledModel::set_input(int lane, std::size_t index, double value) {
    AMSVP_CHECK(lane >= 0 && lane < batch_, "lane out of range");
    AMSVP_CHECK(index < layout_->input_count(), "input index out of range");
    slots_[at(layout_->input_slots()[index], lane)] = value;
}

void BatchCompiledModel::broadcast_input(std::size_t index, double value) {
    AMSVP_CHECK(index < layout_->input_count(), "input index out of range");
    double* lane = slots_.data() + at(layout_->input_slots()[index], 0);
    // Ghost lanes get the broadcast too, keeping their throwaway
    // trajectory identical to a real lane's.
    const int padded = LaneLayout::padded_width(batch_);
    for (int l = 0; l < padded; ++l) {
        lane[l] = value;
    }
}

void BatchCompiledModel::set_value(int lane, const expr::Symbol& symbol, double value) {
    AMSVP_CHECK(lane >= 0 && lane < batch_, "lane out of range");
    const ModelLayout::SymbolSlots& s = layout_->slots_of(symbol);
    for (int k = 0; k <= s.depth; ++k) {
        slots_[at(s.base + k, lane)] = value;
    }
}

void BatchCompiledModel::step(double time_seconds) {
    double* slots = slots_.data();
    double* time_lane = slot_row(layout_->time_slot());
    // Time goes to the ghost lanes too, so their throwaway arithmetic
    // tracks a real lane's (zero-stimulus) trajectory.
    const int padded = LaneLayout::padded_width(batch_);
    for (int l = 0; l < padded; ++l) {
        time_lane[l] = time_seconds;
    }
    layout_->fused_program().execute_batch(slots, batch_);
    // Rotate history: each slot row is lane-contiguous, so one row copy
    // rotates the whole batch, ghost columns included.
    const std::size_t row =
        static_cast<std::size_t>(LaneLayout::padded_width(batch_)) * sizeof(double);
    for (const ModelLayout::SymbolSlots& r : layout_->rotations()) {
        for (int k = r.depth; k >= 1; --k) {
            std::memcpy(slots + at(r.base + k, 0), slots + at(r.base + k - 1, 0), row);
        }
    }
}

double BatchCompiledModel::output(int lane, std::size_t index) const {
    AMSVP_CHECK(lane >= 0 && lane < batch_, "lane out of range");
    AMSVP_CHECK(index < layout_->output_count(), "output index out of range");
    return slots_[at(layout_->output_slots()[index], lane)];
}

const double* BatchCompiledModel::output_lanes(std::size_t index) const {
    AMSVP_CHECK(index < layout_->output_count(), "output index out of range");
    return slots_.data() + at(layout_->output_slots()[index], 0);
}

void BatchCompiledModel::compact_lanes(const std::vector<int>& keep) {
    AMSVP_CHECK(!keep.empty(), "compact_lanes needs at least one surviving lane");
    for (std::size_t j = 0; j < keep.size(); ++j) {
        AMSVP_CHECK(keep[j] >= 0 && keep[j] < batch_, "kept lane out of range");
        AMSVP_CHECK(j == 0 || keep[j] > keep[j - 1], "kept lanes must be strictly ascending");
    }
    const int old_batch = batch_;
    const int new_batch = static_cast<int>(keep.size());
    if (new_batch == old_batch) {
        return;  // nothing retired
    }
    // Forward re-stride is safe in place: for the live lanes the write
    // index i*newP + j never exceeds the read index i*oldP + keep[j]
    // (newP <= oldP, j <= keep[j]); the pad columns written after a row's
    // live lanes end before (i+1)*newP <= (i+1)*oldP, the first index the
    // next row reads. Both cursors advance monotonically.
    const std::size_t old_padded = static_cast<std::size_t>(LaneLayout::padded_width(old_batch));
    const std::size_t new_padded = static_cast<std::size_t>(LaneLayout::padded_width(new_batch));
    const std::size_t slot_count = slots_.size() / old_padded;
    for (std::size_t i = 0; i < slot_count; ++i) {
        const double* src = slots_.data() + i * old_padded;
        double* dst = slots_.data() + i * new_padded;
        for (int j = 0; j < new_batch; ++j) {
            dst[j] = src[keep[static_cast<std::size_t>(j)]];
        }
        for (std::size_t j = static_cast<std::size_t>(new_batch); j < new_padded; ++j) {
            dst[j] = 0.0;  // fresh ghost columns start from clean state
        }
    }
    batch_ = new_batch;
    slots_.resize(slot_count * new_padded);
    // Re-broadcast the constant pool across the new padded rows: the ghost
    // columns just zeroed above are computed by the dynamic kernels, and
    // real constants keep that throwaway arithmetic bounded.
    layout_->fused_program().initialize_constants_batch(slots_.data(), batch_);
}

namespace {

/// Whole-file non-finite fold: returns 0.0 iff every element of
/// [data, data + n) is finite (v - v is 0 for finite v, NaN otherwise).
/// Four independent accumulators keep the reduction out of the loop-carried
/// dependency chain so it runs at load bandwidth.
double fold_nonfinite(const double* data, std::size_t n) {
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        a0 += data[i] - data[i];
        a1 += data[i + 1] - data[i + 1];
        a2 += data[i + 2] - data[i + 2];
        a3 += data[i + 3] - data[i + 3];
    }
    for (; i < n; ++i) {
        a0 += data[i] - data[i];
    }
    return (a0 + a1) + (a2 + a3);
}

/// Whole-file peak magnitude (NaNs may be dropped by the comparisons —
/// callers pair this with fold_nonfinite, which cannot miss them).
double fold_peak_magnitude(const double* data, std::size_t n) {
    double m0 = 0.0, m1 = 0.0, m2 = 0.0, m3 = 0.0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const double a0 = std::fabs(data[i]);
        const double a1 = std::fabs(data[i + 1]);
        const double a2 = std::fabs(data[i + 2]);
        const double a3 = std::fabs(data[i + 3]);
        m0 = m0 > a0 ? m0 : a0;
        m1 = m1 > a1 ? m1 : a1;
        m2 = m2 > a2 ? m2 : a2;
        m3 = m3 > a3 ? m3 : a3;
    }
    for (; i < n; ++i) {
        const double a = std::fabs(data[i]);
        m0 = m0 > a ? m0 : a;
    }
    const double m01 = m0 > m1 ? m0 : m1;
    const double m23 = m2 > m3 ? m2 : m3;
    return m01 > m23 ? m01 : m23;
}

}  // namespace

void BatchCompiledModel::scan_lane_health(double divergence_limit,
                                          std::vector<LaneStatus>& status) const {
    status.assign(static_cast<std::size_t>(batch_), LaneStatus::kOk);
    const std::size_t slot_count = layout_->slot_count();
    const std::size_t lanes = static_cast<std::size_t>(batch_);
    const std::size_t padded = static_cast<std::size_t>(LaneLayout::padded_width(batch_));
    const double* slots = slots_.data();
    // Fast path for the overwhelmingly common all-healthy scan: fold the
    // whole padded file flat — no per-lane state, no allocations — and only
    // drop to the per-lane attribution passes below when something trips.
    // The flat fold also reads the ghost columns; a ghost lane going bad
    // merely forces the (correct, live-lanes-only) slow pass, so the fast
    // path is a conservative filter, never a different answer.
    const std::size_t file = slot_count * padded;
    const bool any_nonfinite = fold_nonfinite(slots, file) != 0.0;
    const bool any_diverged =
        divergence_limit > 0.0 && fold_peak_magnitude(slots, file) > divergence_limit;
    if (!any_nonfinite && !any_diverged) {
        return;
    }
    // Branch-free accumulation so the compiler vectorizes across lanes:
    // v - v is 0 for every finite value and NaN for NaN/±inf, so nan_acc
    // goes (and stays) NaN the moment any of the lane's slots is bad; mag
    // tracks the lane's peak magnitude for the divergence check. The two
    // small allocations happen once per scan (every lane_health_interval
    // steps), noise next to the pass itself.
    std::vector<double> nan_acc(lanes, 0.0);
    if (divergence_limit > 0.0) {
        std::vector<double> mag(lanes, 0.0);
        for (std::size_t i = 0; i < slot_count; ++i) {
            const double* row = slots + i * padded;
            for (std::size_t l = 0; l < lanes; ++l) {
                const double v = row[l];
                nan_acc[l] += v - v;
                const double a = std::fabs(v);
                mag[l] = mag[l] > a ? mag[l] : a;
            }
        }
        for (std::size_t l = 0; l < lanes; ++l) {
            if (nan_acc[l] != 0.0) {
                status[l] = LaneStatus::kNonFinite;
            } else if (mag[l] > divergence_limit) {
                status[l] = LaneStatus::kDiverged;
            }
        }
        return;
    }
    // Default path (non-finite only): one add and one subtract per slot.
    for (std::size_t i = 0; i < slot_count; ++i) {
        const double* row = slots + i * padded;
        for (std::size_t l = 0; l < lanes; ++l) {
            nan_acc[l] += row[l] - row[l];
        }
    }
    for (std::size_t l = 0; l < lanes; ++l) {
        if (nan_acc[l] != 0.0) {
            status[l] = LaneStatus::kNonFinite;
        }
    }
}

std::unique_ptr<BatchExecutor> BatchCompiledModel::make_shard(int lane_count) const {
    return std::make_unique<BatchCompiledModel>(layout_, lane_count);
}

double BatchCompiledModel::value_of(int lane, const expr::Symbol& symbol) const {
    AMSVP_CHECK(lane >= 0 && lane < batch_, "lane out of range");
    return slots_[at(layout_->slot_for(symbol, 0), lane)];
}

}  // namespace amsvp::runtime
