// In-process execution of SignalFlowModel programs.
//
// This is the "plain C++" backend of the paper's evaluation: the generated
// model runs as a flat sequence of compiled expressions over a slot file,
// with no simulation kernel around it. The same compiled form is reused by
// the SystemC-DE and TDF wrappers, so backend comparisons measure kernel
// overhead, not evaluation differences.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "abstraction/signal_flow_model.hpp"
#include "expr/bytecode.hpp"
#include "expr/fused.hpp"
#include "runtime/executor.hpp"

namespace amsvp::runtime {

enum class EvalStrategy {
    kFused,     ///< whole-model fused register machine (default)
    kBytecode,  ///< per-assignment stack postfix programs (differential baseline)
    kTreeWalk,  ///< shared_ptr tree interpretation (ablation baseline)
};

class CompiledModel final : public ModelExecutor {
public:
    explicit CompiledModel(const abstraction::SignalFlowModel& model,
                           EvalStrategy strategy = EvalStrategy::kFused);

    /// Reset state to the model's initial values (zeros by default).
    void reset() override;

    [[nodiscard]] std::size_t input_count() const override { return input_slots_.size(); }
    [[nodiscard]] std::size_t output_count() const override { return output_slots_.size(); }
    [[nodiscard]] double timestep() const override { return timestep_; }

    /// Input index by stimulus name; aborts on unknown names.
    [[nodiscard]] std::size_t input_index(const std::string& name) const;

    void set_input(std::size_t index, double value) override;

    /// Evaluate one step at absolute time `time_seconds` (drives $abstime),
    /// then rotate history.
    void step(double time_seconds) override;

    [[nodiscard]] double output(std::size_t index) const override;

    /// Value of an arbitrary model symbol at the current step (testing).
    [[nodiscard]] double value_of(const expr::Symbol& symbol) const;

    [[nodiscard]] std::size_t slot_count() const { return slots_.size(); }

    /// The fused instruction stream (kFused strategy; tests/diagnostics).
    [[nodiscard]] const expr::FusedProgram& fused_program() const { return fused_; }

private:
    struct SymbolSlots {
        int base = 0;   ///< slot of the current value
        int depth = 0;  ///< number of history slots behind it
    };

    struct CompiledAssignment {
        int target_slot;
        expr::Program program;     // kBytecode
        expr::ExprPtr tree;        // kTreeWalk
    };

    [[nodiscard]] int slot_for(const expr::Symbol& s, int delay) const;
    int ensure_symbol(const expr::Symbol& s, int extra_depth);

    EvalStrategy strategy_;
    expr::FusedProgram fused_;  // kFused
    double timestep_ = 0.0;
    std::vector<double> slots_;
    std::unordered_map<expr::Symbol, SymbolSlots, expr::SymbolHash> layout_;
    std::vector<CompiledAssignment> assignments_;
    std::vector<int> input_slots_;
    std::vector<int> output_slots_;
    int time_slot_ = -1;
    std::vector<std::pair<int, double>> initial_values_;  // slot -> value
    /// (base, depth) pairs to rotate after each step.
    std::vector<SymbolSlots> rotations_;
    std::unordered_map<std::string, std::size_t> input_names_;
};

}  // namespace amsvp::runtime
