// In-process execution of SignalFlowModel programs.
//
// This is the "plain C++" backend of the paper's evaluation: the generated
// model runs as a flat sequence of compiled expressions over a slot file,
// with no simulation kernel around it. The same compiled form is reused by
// the SystemC-DE and TDF wrappers, so backend comparisons measure kernel
// overhead, not evaluation differences.
//
// The compile artifact lives in a shared, immutable ModelLayout; a
// CompiledModel is one executing instance over it — a slot vector plus thin
// step logic. N instances of the same model can (and should) share one
// layout: see ModelLayout::compile and BatchCompiledModel for the batched
// form that also shares the slot file.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "abstraction/signal_flow_model.hpp"
#include "runtime/executor.hpp"
#include "runtime/model_layout.hpp"

namespace amsvp::runtime {

class CompiledModel final : public ModelExecutor {
public:
    explicit CompiledModel(const abstraction::SignalFlowModel& model,
                           EvalStrategy strategy = EvalStrategy::kFused);

    /// Instance over a pre-compiled layout (no compilation happens here).
    explicit CompiledModel(std::shared_ptr<const ModelLayout> layout);

    /// Reset state to the model's initial values (zeros by default).
    void reset() override;

    [[nodiscard]] std::size_t input_count() const override { return layout_->input_count(); }
    [[nodiscard]] std::size_t output_count() const override { return layout_->output_count(); }
    [[nodiscard]] double timestep() const override { return layout_->timestep(); }

    /// Input index by stimulus name; aborts on unknown names.
    [[nodiscard]] std::size_t input_index(const std::string& name) const {
        return layout_->input_index(name);
    }

    void set_input(std::size_t index, double value) override;

    /// Evaluate one step at absolute time `time_seconds` (drives $abstime),
    /// then rotate history.
    void step(double time_seconds) override;

    [[nodiscard]] double output(std::size_t index) const override;

    /// Value of an arbitrary model symbol at the current step (testing).
    [[nodiscard]] double value_of(const expr::Symbol& symbol) const;

    /// Raw slot value (testing: slot-for-slot differentials against
    /// generated code, which exposes the same layout via slot_value()).
    [[nodiscard]] double slot_value(int slot) const {
        return slots_.at(static_cast<std::size_t>(slot));
    }

    [[nodiscard]] std::size_t slot_count() const { return slots_.size(); }

    /// The shared compile artifact (pass to more instances to reuse it).
    [[nodiscard]] const std::shared_ptr<const ModelLayout>& layout() const { return layout_; }

    /// The fused instruction stream (kFused strategy; tests/diagnostics).
    [[nodiscard]] const expr::FusedProgram& fused_program() const {
        return layout_->fused_program();
    }

private:
    std::shared_ptr<const ModelLayout> layout_;
    std::vector<double> slots_;
};

}  // namespace amsvp::runtime
