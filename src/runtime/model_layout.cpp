#include "runtime/model_layout.hpp"

#include <algorithm>

#include "analysis/verifier.hpp"
#include "expr/traversal.hpp"
#include "support/check.hpp"

namespace amsvp::runtime {

using abstraction::Assignment;
using abstraction::SignalFlowModel;
using expr::ExprKind;
using expr::ExprPtr;
using expr::Symbol;

std::shared_ptr<const ModelLayout> ModelLayout::compile(const SignalFlowModel& model,
                                                        EvalStrategy strategy) {
    auto layout = std::shared_ptr<ModelLayout>(new ModelLayout());
    ModelLayout& l = *layout;
    l.strategy_ = strategy;
    l.timestep_ = model.timestep;

    // Pass 1: history depth needed per symbol.
    std::unordered_map<Symbol, int, expr::SymbolHash> depth;
    auto note_depth = [&](const Symbol& s, int d) {
        auto [it, inserted] = depth.try_emplace(s, d);
        if (!inserted) {
            it->second = std::max(it->second, d);
        }
    };
    for (const Symbol& in : model.inputs) {
        note_depth(in, 0);
    }
    for (const Assignment& a : model.assignments) {
        note_depth(a.target, 0);
        expr::visit(a.value, [&](const ExprPtr& node) {
            if (node->kind() == ExprKind::kSymbol) {
                note_depth(node->symbol(), 0);
            } else if (node->kind() == ExprKind::kDelayed) {
                note_depth(node->symbol(), node->delay());
            }
            return true;
        });
    }

    // Pass 2: allocate slots (current value + history behind it).
    std::size_t slot_count = 0;
    auto allocate = [&](const Symbol& s) {
        const auto it = depth.find(s);
        const int d = it == depth.end() ? 0 : it->second;
        SymbolSlots slots{static_cast<int>(slot_count), d};
        l.layout_.emplace(s, slots);
        slot_count += static_cast<std::size_t>(d) + 1;
        if (d > 0) {
            l.rotations_.push_back(slots);
        }
    };
    for (const Symbol& in : model.inputs) {
        allocate(in);
    }
    for (const Assignment& a : model.assignments) {
        if (!l.layout_.contains(a.target)) {
            allocate(a.target);
        }
    }
    // Any symbol referenced but never assigned / declared is a bug upstream;
    // allocate defensively so resolver aborts with context below instead.
    for (const auto& [sym, d] : depth) {
        if (!l.layout_.contains(sym)) {
            allocate(sym);
        }
    }
    // $abstime.
    {
        const Symbol time = expr::time_symbol();
        if (!l.layout_.contains(time)) {
            l.layout_.emplace(time, SymbolSlots{static_cast<int>(slot_count), 0});
            ++slot_count;
        }
        l.time_slot_ = l.layout_.at(time).base;
    }
    l.model_slot_count_ = slot_count;

    // Pass 3: compile assignments.
    const expr::SlotResolver resolver = [&l](const Symbol& s, int delay) {
        return l.slot_for(s, delay);
    };
    if (strategy == EvalStrategy::kFused) {
        // Whole-model compilation: one fused instruction stream over the
        // slot file, with scratch registers appended behind the model slots.
        std::vector<expr::FusedProgram::AssignmentSpec> specs;
        specs.reserve(model.assignments.size());
        for (const Assignment& a : model.assignments) {
            specs.push_back({l.slot_for(a.target, 0), a.value});
        }
        l.fused_ = expr::FusedProgram::compile(specs, resolver, static_cast<int>(slot_count));
        slot_count += static_cast<std::size_t>(l.fused_.scratch_count());
    } else {
        for (const Assignment& a : model.assignments) {
            CompiledAssignment ca;
            ca.target_slot = l.slot_for(a.target, 0);
            if (strategy == EvalStrategy::kBytecode) {
                ca.program = expr::Program::compile(a.value, resolver);
            } else {
                ca.tree = a.value;
            }
            l.assignments_.push_back(std::move(ca));
        }
    }
    l.slot_count_ = slot_count;

    for (const Symbol& in : model.inputs) {
        l.input_slots_.push_back(l.slot_for(in, 0));
    }
    for (const Symbol& out : model.outputs) {
        l.output_slots_.push_back(l.slot_for(out, 0));
    }

    for (const auto& [sym, value] : model.initial_values) {
        const auto it = l.layout_.find(sym);
        if (it == l.layout_.end()) {
            continue;
        }
        for (int k = 0; k <= it->second.depth; ++k) {
            l.initial_values_.emplace_back(it->second.base + k, value);
        }
    }
    // Remember input names for input_index().
    for (std::size_t i = 0; i < model.inputs.size(); ++i) {
        l.input_names_.emplace(model.inputs[i].name, i);
    }
#ifndef NDEBUG
    // Debug builds verify every fused compile before anything executes it;
    // Release builds verify once per model at ModelCache admission instead
    // (see ModelCache::locked_layout_for) to keep per-compile cost off the
    // sweep-service hot path.
    if (strategy == EvalStrategy::kFused) {
        analysis::verify_layout_or_abort(l, "ModelLayout::compile");
    }
#endif
    return layout;
}

int ModelLayout::slot_for(const Symbol& s, int delay) const {
    const auto it = layout_.find(s);
    AMSVP_CHECK(it != layout_.end(), "reference to unknown symbol");
    AMSVP_CHECK(delay >= 0 && delay <= it->second.depth, "delay exceeds allocated history");
    return it->second.base + delay;
}

const ModelLayout::SymbolSlots& ModelLayout::slots_of(const Symbol& s) const {
    const auto it = layout_.find(s);
    AMSVP_CHECK(it != layout_.end(), "reference to unknown symbol");
    return it->second;
}

std::size_t ModelLayout::input_index(const std::string& name) const {
    const auto it = input_names_.find(name);
    AMSVP_CHECK(it != input_names_.end(), "unknown input name");
    return it->second;
}

}  // namespace amsvp::runtime
