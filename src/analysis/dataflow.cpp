#include "analysis/dataflow.hpp"

#include <algorithm>
#include <string>

#include "support/check.hpp"

namespace amsvp::analysis {
namespace {

/// Slot classification bitmaps so the scans below stay O(1) per operand.
struct SlotFacts {
    std::vector<char> is_const;    ///< pooled-constant slot
    std::vector<char> read;        ///< read by some instruction (any pass)
    std::int32_t model_slots = 0;

    SlotFacts(const ProgramView& view, const DefUse& du)
        : is_const(static_cast<std::size_t>(view.total_slot_count()), 0),
          read(static_cast<std::size_t>(view.total_slot_count()), 0),
          model_slots(view.model_slot_count) {
        for (const auto& c : *view.constants) {
            is_const[static_cast<std::size_t>(c.first)] = 1;
        }
        for (const std::int32_t slot : du.uses) {
            read[static_cast<std::size_t>(slot)] = 1;
        }
    }

    [[nodiscard]] bool scratch_value_slot(std::int32_t slot) const {
        return slot >= model_slots && !is_const[static_cast<std::size_t>(slot)];
    }
};

}  // namespace

DefUse compute_def_use(const ProgramView& view) {
    DefUse du;
    const std::size_t n = view.code->size();
    du.def.assign(n, -1);
    du.use_begin.reserve(n + 1);
    // kMulAdd-family reads 3 slots; only kLinComb can exceed that, and its
    // terms grow `uses` past the reserve without reallocation churn in the
    // common case.
    du.uses.reserve(3 * n);
    for (std::size_t i = 0; i < n; ++i) {
        const expr::FusedInstr& instr = (*view.code)[i];
        du.use_begin.push_back(static_cast<std::int32_t>(du.uses.size()));
        if (!opcode_valid(instr.op)) {
            continue;
        }
        du.def[i] = instr.dst;
        for_each_read_slot(instr, *view.lin_terms, [&](std::int32_t slot, int) {
            du.uses.push_back(slot);
        });
    }
    du.use_begin.push_back(static_cast<std::int32_t>(du.uses.size()));
    return du;
}

ReachingDefs compute_reaching_defs(const ProgramView& view, const DefUse& du) {
    ReachingDefs reaching;
    reaching.use_defs.reserve(du.uses.size());
    reaching.final_def.assign(static_cast<std::size_t>(view.total_slot_count()), -1);
    for (std::size_t i = 0; i < du.size(); ++i) {
        for (std::int32_t u = du.use_begin[i]; u < du.use_begin[i + 1]; ++u) {
            reaching.use_defs.push_back(
                reaching.final_def[static_cast<std::size_t>(du.uses[u])]);
        }
        if (du.def[i] >= 0) {
            reaching.final_def[static_cast<std::size_t>(du.def[i])] =
                static_cast<std::int32_t>(i);
        }
    }
    return reaching;
}

namespace {

/// compute_liveness with a caller-provided SlotFacts, so run_dataflow_checks
/// builds the bitmaps once for both the replay and the hygiene scans.
Liveness liveness_with_facts(const SlotFacts& facts, const DefUse& du,
                             const ReachingDefs& reaching) {
    Liveness live;
    live.last_use.assign(du.size(), -1);
    for (std::size_t i = 0; i < du.size(); ++i) {
        for (std::int32_t u = du.use_begin[i]; u < du.use_begin[i + 1]; ++u) {
            const std::int32_t def = reaching.use_defs[u];
            if (def >= 0) {
                live.last_use[static_cast<std::size_t>(def)] =
                    static_cast<std::int32_t>(i);
            }
        }
    }

    // Replay FusedCompiler::compact_scratch's register demand with this
    // pass's own liveness: at each instruction, scratch values whose last
    // use is here die *before* the destination register is claimed (the
    // compiler reuses a dying operand's register for dst), and a value
    // nothing ever reads still occupies a register at its defining
    // instruction before being recycled. peak_live_scratch is the max
    // clique of the resulting interval graph — exactly the register count
    // a greedy free-list allocator needs on straight-line code.
    std::vector<char> active(du.size(), 0);
    std::int32_t live_count = 0;
    for (std::size_t i = 0; i < du.size(); ++i) {
        for (std::int32_t u = du.use_begin[i]; u < du.use_begin[i + 1]; ++u) {
            const std::int32_t def = reaching.use_defs[u];
            if (def >= 0 && active[static_cast<std::size_t>(def)] &&
                live.last_use[static_cast<std::size_t>(def)] ==
                    static_cast<std::int32_t>(i)) {
                active[static_cast<std::size_t>(def)] = 0;
                --live_count;
            }
        }
        const std::int32_t def_slot = du.def[i];
        if (def_slot >= 0 && facts.scratch_value_slot(def_slot)) {
            active[i] = 1;
            ++live_count;
            live.peak_live_scratch = std::max(live.peak_live_scratch, live_count);
            if (live.last_use[i] < 0) {
                active[i] = 0;
                --live_count;
            }
        }
    }
    return live;
}

}  // namespace

Liveness compute_liveness(const ProgramView& view, const DefUse& du,
                          const ReachingDefs& reaching) {
    return liveness_with_facts(SlotFacts(view, du), du, reaching);
}

void run_dataflow_checks(const ProgramView& view, support::DiagnosticEngine& diags) {
    const DefUse du = compute_def_use(view);
    const ReachingDefs reaching = compute_reaching_defs(view, du);
    const SlotFacts facts(view, du);
    const Liveness live = liveness_with_facts(facts, du, reaching);

    // Scratch reads must be dominated by a write in the same pass: scratch
    // carries nothing across iterations (constants excepted — those are
    // re-materialized by initialize_constants before the first pass).
    for (std::size_t i = 0; i < du.size(); ++i) {
        for (std::int32_t u = du.use_begin[i]; u < du.use_begin[i + 1]; ++u) {
            const std::int32_t slot = du.uses[u];
            if (reaching.use_defs[u] < 0 && facts.scratch_value_slot(slot)) {
                diags.error({}, "instr #" + std::to_string(i) + ": reads scratch slot " +
                                    std::to_string(slot) +
                                    " before any write (uninitialized scratch)");
            }
        }
    }

    // Compaction cross-check: pooled constants + peak simultaneously-live
    // values is the whole scratch demand. Disagreement means the
    // compiler's internal liveness and the program's actual def-use have
    // drifted apart — exactly the silent-corruption class this pass exists
    // to catch.
    const auto expected = static_cast<std::int32_t>(view.constants->size()) +
                          live.peak_live_scratch;
    if (view.scratch_count != expected) {
        diags.error({}, "scratch compaction mismatch: program claims " +
                            std::to_string(view.scratch_count) +
                            " scratch slots but dataflow needs " +
                            std::to_string(expected) + " (" +
                            std::to_string(view.constants->size()) +
                            " pooled constants + peak " +
                            std::to_string(live.peak_live_scratch) +
                            " live values)");
    }

    // Hygiene warnings. A model-slot def is live-out through the driver's
    // back edge when it is the slot's final def; anything else unread is a
    // dead store. A final model-slot def is *observed* when the slot is an
    // output, read somewhere (this pass reads last pass's value), or feeds
    // a history chain someone reads.
    for (std::size_t i = 0; i < du.size(); ++i) {
        const std::int32_t def_slot = du.def[i];
        if (def_slot < 0 || live.last_use[i] >= 0) {
            continue;
        }
        const bool final_def =
            reaching.final_def[static_cast<std::size_t>(def_slot)] ==
            static_cast<std::int32_t>(i);
        if (facts.scratch_value_slot(def_slot) || !final_def) {
            diags.warning({}, "instr #" + std::to_string(i) + ": dead store to slot " +
                                  std::to_string(def_slot) + " (value never read)");
            continue;
        }
        bool observed = std::find(view.output_slots.begin(), view.output_slots.end(),
                                  def_slot) != view.output_slots.end() ||
                        facts.read[static_cast<std::size_t>(def_slot)];
        for (const Rotation& r : view.rotations) {
            if (r.base != def_slot) {
                continue;
            }
            for (std::int32_t h = r.base + 1; h <= r.base + r.depth; ++h) {
                observed = observed || facts.read[static_cast<std::size_t>(h)];
            }
        }
        if (!observed) {
            diags.warning({}, "instr #" + std::to_string(i) + ": model slot " +
                                  std::to_string(def_slot) +
                                  " is written but never observed (not an output, "
                                  "never read, no history reader)");
        }
    }
}

}  // namespace amsvp::analysis
