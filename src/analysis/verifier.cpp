#include "analysis/verifier.hpp"

#include <cstdio>
#include <string>

#include "analysis/dataflow.hpp"
#include "runtime/model_layout.hpp"
#include "support/check.hpp"

namespace amsvp::analysis {
namespace {

using expr::FusedInstr;
using expr::FusedOp;

std::string instr_prefix(std::size_t index, const FusedInstr& instr) {
    std::string text = "instr #" + std::to_string(index);
    if (opcode_valid(instr.op)) {
        text += " (";
        text += expr::to_string(instr.op);
        text += ")";
    }
    return text;
}

/// Slot-class bitmaps built once per program so the per-operand checks in
/// check_instruction are O(1) — the linear ProgramView::is_constant_slot /
/// is_history_slot scans add up on every Release cache admission (the
/// verifier is budgeted at <= 5% of a cold compile by bench/compare.py).
/// Out-of-range pool/rotation entries are dropped here; check_program_facts
/// reports them on its own.
struct SlotClasses {
    std::vector<char> is_const;
    std::vector<char> is_hist;

    explicit SlotClasses(const ProgramView& view) {
        const std::int32_t total = std::max<std::int32_t>(view.total_slot_count(), 0);
        is_const.assign(static_cast<std::size_t>(total), 0);
        is_hist.assign(static_cast<std::size_t>(total), 0);
        for (const auto& c : *view.constants) {
            if (c.first >= 0 && c.first < total) {
                is_const[static_cast<std::size_t>(c.first)] = 1;
            }
        }
        for (const Rotation& r : view.rotations) {
            for (std::int32_t h = r.base + 1; h <= r.base + r.depth; ++h) {
                if (h >= 0 && h < total) {
                    is_hist[static_cast<std::size_t>(h)] = 1;
                }
            }
        }
    }
};

/// Bounds/role checks for one instruction. Reports into `diags`; never
/// stops early — a corrupted stream should surface every problem at once.
/// The diagnostic prefix is built lazily: a clean instruction (the only
/// case on the hot admission path) must not touch the heap.
void check_instruction(const ProgramView& view, const SlotClasses& cls,
                       std::size_t index, const FusedInstr& instr,
                       support::DiagnosticEngine& diags) {
    const auto prefix = [&] { return instr_prefix(index, instr); };
    if (!opcode_valid(instr.op)) {
        diags.error({}, "instr #" + std::to_string(index) + ": invalid opcode " +
                            std::to_string(static_cast<int>(instr.op)));
        return;  // operand roles are unknowable without the opcode
    }
    const std::int32_t total = view.total_slot_count();
    if (instr.dst < 0 || instr.dst >= total) {
        diags.error({}, prefix() + ": dst slot " + std::to_string(instr.dst) +
                            " out of range [0, " + std::to_string(total) + ")");
    } else if (cls.is_const[static_cast<std::size_t>(instr.dst)]) {
        diags.error({}, prefix() + ": dst slot " + std::to_string(instr.dst) +
                            " is a constant-pool slot (pool slots are immutable "
                            "after initialize_constants)");
    } else if (cls.is_hist[static_cast<std::size_t>(instr.dst)]) {
        diags.error({}, prefix() + ": dst slot " + std::to_string(instr.dst) +
                            " is a history slot (written only by the post-step "
                            "rotation)");
    } else if (instr.dst == view.time_slot) {
        diags.error({}, prefix() + ": dst slot " + std::to_string(instr.dst) +
                            " is the $abstime slot (written only by the driver)");
    }
    if (instr.op == FusedOp::kLinComb) {
        const auto table = static_cast<std::int64_t>(view.lin_terms->size());
        if (instr.a < 0 || instr.b < 1 ||
            static_cast<std::int64_t>(instr.a) + instr.b > table) {
            diags.error({}, prefix() + ": term table range [" +
                                std::to_string(instr.a) + ", " +
                                std::to_string(instr.a) + " + " +
                                std::to_string(instr.b) + ") outside lin_terms size " +
                                std::to_string(table));
        }
    }
    for_each_read_slot(instr, *view.lin_terms,
                       [&](std::int32_t slot, int role) {
                           if (slot < 0 || slot >= total) {
                               const char* what =
                                   instr.op == FusedOp::kLinComb ? "term" : "operand";
                               diags.error({}, prefix() + ": read " + what + " " +
                                                   std::to_string(role) + " slot " +
                                                   std::to_string(slot) +
                                                   " out of range [0, " +
                                                   std::to_string(total) + ")");
                           }
                       });
}

/// Program-level checks that don't concern any single instruction: the
/// constant pool must live in the scratch area with no duplicate slots,
/// rotation groups inside the model prefix and pairwise disjoint, layout
/// slots (outputs, inputs, $abstime) in bounds.
void check_program_facts(const ProgramView& view, support::DiagnosticEngine& diags) {
    if (view.scratch_count < 0) {
        diags.error({}, "scratch_count " + std::to_string(view.scratch_count) +
                            " is negative");
    }
    for (std::size_t i = 0; i < view.constants->size(); ++i) {
        const std::int32_t slot = (*view.constants)[i].first;
        if (!view.is_scratch_slot(slot)) {
            diags.error({}, "constant-pool entry " + std::to_string(i) + ": slot " +
                                std::to_string(slot) + " outside the scratch area [" +
                                std::to_string(view.model_slot_count) + ", " +
                                std::to_string(view.total_slot_count()) + ")");
        }
        for (std::size_t j = i + 1; j < view.constants->size(); ++j) {
            if ((*view.constants)[j].first == slot) {
                diags.error({}, "constant-pool entries " + std::to_string(i) + " and " +
                                    std::to_string(j) + " both claim slot " +
                                    std::to_string(slot));
            }
        }
    }
    for (std::size_t i = 0; i < view.rotations.size(); ++i) {
        const Rotation& r = view.rotations[i];
        if (r.base < 0 || r.depth < 1 || r.base + r.depth >= view.model_slot_count) {
            diags.error({}, "rotation group " + std::to_string(i) + ": slots [" +
                                std::to_string(r.base) + ", " +
                                std::to_string(r.base + r.depth) +
                                "] outside the model-slot prefix [0, " +
                                std::to_string(view.model_slot_count) + ")");
            continue;
        }
        for (std::size_t j = i + 1; j < view.rotations.size(); ++j) {
            const Rotation& s = view.rotations[j];
            const bool disjoint =
                r.base + r.depth < s.base || s.base + s.depth < r.base;
            if (!disjoint) {
                diags.error({}, "rotation groups " + std::to_string(i) + " and " +
                                    std::to_string(j) + " overlap ([" +
                                    std::to_string(r.base) + ", " +
                                    std::to_string(r.base + r.depth) + "] vs [" +
                                    std::to_string(s.base) + ", " +
                                    std::to_string(s.base + s.depth) + "])");
            }
        }
    }
    auto check_layout_slot = [&](std::int32_t slot, const char* what) {
        if (slot < 0 || slot >= view.model_slot_count) {
            diags.error({}, std::string(what) + " slot " + std::to_string(slot) +
                                " outside the model-slot prefix [0, " +
                                std::to_string(view.model_slot_count) + ")");
        }
    };
    for (const std::int32_t slot : view.output_slots) {
        check_layout_slot(slot, "output");
    }
    for (const std::int32_t slot : view.input_slots) {
        check_layout_slot(slot, "input");
    }
    if (view.time_slot >= 0) {
        check_layout_slot(view.time_slot, "$abstime");
    }
}

}  // namespace

bool verify_structure(const ProgramView& view, support::DiagnosticEngine& diags) {
    AMSVP_CHECK(view.code != nullptr && view.lin_terms != nullptr &&
                    view.constants != nullptr,
                "ProgramView not populated");
    const std::size_t before = diags.error_count();
    check_program_facts(view, diags);
    const SlotClasses cls(view);
    for (std::size_t i = 0; i < view.code->size(); ++i) {
        check_instruction(view, cls, i, (*view.code)[i], diags);
    }
    return diags.error_count() == before;
}

bool verify(const ProgramView& view, support::DiagnosticEngine& diags) {
    const bool structural = verify_structure(view, diags);
    // Dataflow assumes in-bounds indices; on a structurally broken stream
    // its answers would be noise on top of the real diagnostics.
    if (!structural) {
        return false;
    }
    const std::size_t before = diags.error_count();
    run_dataflow_checks(view, diags);
    return diags.error_count() == before;
}

bool verify_layout(const runtime::ModelLayout& layout,
                   support::DiagnosticEngine& diags) {
    return verify(view_of(layout), diags);
}

void verify_layout_or_abort(const runtime::ModelLayout& layout, const char* where) {
    support::DiagnosticEngine diags;
    if (verify_layout(layout, diags)) {
        return;
    }
    std::fprintf(stderr, "[%s] fused-IR verification failed:\n%s", where,
                 diags.render_all().c_str());
    AMSVP_CHECK(false, "fused-IR verification failed; see diagnostics above");
}

}  // namespace amsvp::analysis
