// Structural verifier for the fused IR.
//
// analysis::verify is the fused-IR analogue of llvm::verifyModule: it
// checks every invariant the interpreter, the C++/SystemC emitters and the
// ORC lowering silently rely on — slot indices in bounds, no writes into
// the constant pool or history slots, kLinComb term tables inside the term
// vector, rotation groups inside the model-slot prefix and disjoint —
// and then runs the dataflow-derived checks (scratch read-before-write,
// scratch-compaction cross-check; see dataflow.hpp). Every diagnostic that
// concerns an instruction names its index as "instr #<i>", which is what
// the mutation suite keys on.
//
// verify() reports structural errors plus dataflow hygiene warnings.
// verify_layout() additionally applies the layout facts (outputs, time
// slot, rotations) and is the production entry point; verify_layout_or_abort
// is the Debug-build / cache-admission hook: render everything to stderr,
// then abort, because executing an ill-formed program means out-of-bounds
// slot traffic.
#pragma once

#include "analysis/program_view.hpp"
#include "support/diagnostics.hpp"

namespace amsvp::runtime {
class ModelLayout;
}  // namespace amsvp::runtime

namespace amsvp::analysis {

/// Structural + dataflow verification of one program view. Returns true
/// when no errors were recorded (warnings allowed).
[[nodiscard]] bool verify(const ProgramView& view, support::DiagnosticEngine& diags);

/// Structural checks only (bounds, arity, term tables, constant pool,
/// rotations). The mutation suite uses this to pin structural corruption
/// classes without the dataflow passes reporting first.
[[nodiscard]] bool verify_structure(const ProgramView& view,
                                    support::DiagnosticEngine& diags);

/// verify() over view_of(layout). The production entry point.
[[nodiscard]] bool verify_layout(const runtime::ModelLayout& layout,
                                 support::DiagnosticEngine& diags);

/// verify_layout, rendering all diagnostics to stderr and aborting on
/// errors. `where` names the call site (e.g. "ModelLayout::compile").
void verify_layout_or_abort(const runtime::ModelLayout& layout, const char* where);

}  // namespace amsvp::analysis
