#include "analysis/program_view.hpp"

#include <algorithm>

#include "runtime/model_layout.hpp"
#include "support/check.hpp"

namespace amsvp::analysis {

bool ProgramView::is_constant_slot(std::int32_t slot) const {
    if (constants == nullptr) {
        return false;
    }
    return std::any_of(constants->begin(), constants->end(),
                       [slot](const auto& c) { return c.first == slot; });
}

bool ProgramView::is_history_slot(std::int32_t slot) const {
    return std::any_of(rotations.begin(), rotations.end(), [slot](const Rotation& r) {
        return slot > r.base && slot <= r.base + r.depth;
    });
}

ProgramView view_of(const runtime::ModelLayout& layout) {
    AMSVP_CHECK(layout.strategy() == runtime::EvalStrategy::kFused,
                "analysis::view_of requires a kFused layout");
    const expr::FusedProgram& program = layout.fused_program();
    ProgramView view;
    view.code = &program.instructions();
    view.lin_terms = &program.lin_terms();
    view.constants = &program.constants();
    view.model_slot_count = static_cast<std::int32_t>(layout.model_slot_count());
    view.scratch_count = program.scratch_count();
    view.output_slots.assign(layout.output_slots().begin(), layout.output_slots().end());
    view.input_slots.assign(layout.input_slots().begin(), layout.input_slots().end());
    view.rotations.reserve(layout.rotations().size());
    for (const auto& r : layout.rotations()) {
        view.rotations.push_back(Rotation{r.base, r.depth});
    }
    view.time_slot = layout.time_slot();
    return view;
}

bool opcode_valid(expr::FusedOp op) {
    return static_cast<std::uint8_t>(op) <=
           static_cast<std::uint8_t>(expr::FusedOp::kLinComb);
}

}  // namespace amsvp::analysis
