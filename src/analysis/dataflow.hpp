// Dataflow over the fused instruction stream.
//
// A fused program is a straight-line loop body: the driver runs it once per
// timestep over a slot file whose model slots persist across iterations
// (that back edge is why a model-slot value with no reader *this* pass may
// still be observed — next pass, or through its history rotation). Scratch
// slots carry no values across iterations: constants are re-materialized by
// initialize_constants and every other scratch read must be dominated by a
// write in the same pass.
//
// On straight-line code the classic bit-vector fixpoints collapse to one
// forward scan (reaching definitions: the unique last def) and one backward
// scan (liveness: the last use of each definition). compute_def_use /
// compute_reaching_defs / compute_liveness expose those results per
// instruction; run_dataflow_checks derives the verifier-grade facts:
//
//  * scratch read-before-write (error — reads whatever the allocator left),
//  * scratch-compaction cross-check (error): FusedCompiler's greedy
//    free-list recycler is register-optimal on an interval graph, so
//    scratch_count() must equal pooled constants + this pass's
//    independently computed peak live-value count — any drift means the
//    compiler's liveness and the program's actual def-use disagree,
//  * dead stores (warning) and model-slot writes nothing can ever observe
//    (warning): not unsound, but the compiler shouldn't emit them.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/program_view.hpp"
#include "support/diagnostics.hpp"

namespace amsvp::analysis {

/// Per-instruction def/use sets decoded from operand roles. Flat layout —
/// one shared `uses` array indexed by per-instruction offsets — because
/// this runs on every Release-build cache admission: two heap vectors per
/// instruction would dominate the verifier's runtime (gated at <= 5% of a
/// cold compile by bench/compare.py).
struct DefUse {
    std::vector<std::int32_t> def;        ///< per instr: dst slot, -1 for invalid opcode
    std::vector<std::int32_t> uses;       ///< all read slots, instr-major, operand order
    std::vector<std::int32_t> use_begin;  ///< per instr: offset into `uses` (+1 sentinel)

    /// Number of instructions covered.
    [[nodiscard]] std::size_t size() const { return def.size(); }
};

[[nodiscard]] DefUse compute_def_use(const ProgramView& view);

/// Reaching definitions: for each use, the instruction index whose def it
/// reads, or -1 when the value flows in from outside the pass (model slot
/// state, pooled constant, or an uninitialized scratch read).
struct ReachingDefs {
    std::vector<std::int32_t> use_defs;   ///< parallel to DefUse::uses
    std::vector<std::int32_t> final_def;  ///< per slot: last defining instr or -1
};

[[nodiscard]] ReachingDefs compute_reaching_defs(const ProgramView& view,
                                                 const DefUse& du);

/// Liveness of each definition: the last instruction reading it (-1 when
/// nothing ever does), plus the peak number of simultaneously live scratch
/// values — the register demand FusedCompiler's compaction must match.
struct Liveness {
    std::vector<std::int32_t> last_use;  ///< per instruction (its def), -1 = dead
    std::int32_t peak_live_scratch = 0;
};

[[nodiscard]] Liveness compute_liveness(const ProgramView& view, const DefUse& du,
                                        const ReachingDefs& reaching);

/// All derived checks described above. Assumes the view already passed
/// verify_structure (indices in bounds).
void run_dataflow_checks(const ProgramView& view, support::DiagnosticEngine& diags);

}  // namespace amsvp::analysis
