// The facts every static-analysis pass needs about one compiled fused
// program, decoupled from FusedProgram's ownership.
//
// FusedProgram hands out const references to its instruction stream, term
// table and constant pool but (deliberately) no mutable access. The passes
// in src/analysis therefore operate on a ProgramView — borrowed pointers to
// those vectors plus the layout facts (model-slot prefix size, outputs,
// history-rotation groups) that give slot indices their meaning. Production
// callers build one with view_of(ModelLayout); the verifier's mutation
// tests build views over locally corrupted copies of the same vectors,
// which is what makes every corruption class testable without a backdoor
// into the compiler.
//
// This header also owns the one def-use decode shared by every pass:
// for_each_read_slot / instruction arity mirror the operand semantics of
// FusedProgram::execute_impl (and of FusedCompiler's internal liveness
// pass). If an opcode's operand roles ever change, this is the single
// place the analyses learn about it.
#pragma once

#include <cstdint>
#include <vector>

#include "expr/fused.hpp"

namespace amsvp::runtime {
class ModelLayout;
}  // namespace amsvp::runtime

namespace amsvp::analysis {

/// One history-rotation group: slots [base, base + depth] belong to one
/// symbol; after every step, slot base+k receives slot base+k-1 (deepest
/// first). The program may write only the base (current-value) slot.
struct Rotation {
    std::int32_t base = 0;
    std::int32_t depth = 0;
};

/// Borrowed view of one compiled program plus its layout facts. The
/// pointed-to vectors must outlive the view (they live in the FusedProgram
/// / ModelLayout for production callers, in test-local copies for the
/// mutation suite).
struct ProgramView {
    const std::vector<expr::FusedInstr>* code = nullptr;
    const std::vector<expr::LinTerm>* lin_terms = nullptr;
    const std::vector<std::pair<std::int32_t, double>>* constants = nullptr;

    /// Slots holding model symbols (inputs, targets, history, $abstime);
    /// everything at or above this index is fused scratch / constant pool.
    std::int32_t model_slot_count = 0;
    /// Scratch slots appended behind the model slots (pooled constants
    /// first, then the recycled temporary registers) — must equal
    /// FusedProgram::scratch_count().
    std::int32_t scratch_count = 0;

    // Layout facts; empty/-1 when verifying a bare program (no layout).
    std::vector<std::int32_t> output_slots;
    std::vector<std::int32_t> input_slots;
    std::vector<Rotation> rotations;
    std::int32_t time_slot = -1;

    [[nodiscard]] std::int32_t total_slot_count() const {
        return model_slot_count + scratch_count;
    }
    [[nodiscard]] bool is_model_slot(std::int32_t slot) const {
        return slot >= 0 && slot < model_slot_count;
    }
    [[nodiscard]] bool is_scratch_slot(std::int32_t slot) const {
        return slot >= model_slot_count && slot < total_slot_count();
    }
    /// True when `slot` holds a pooled constant (immutable after
    /// initialize_constants; no instruction may write it).
    [[nodiscard]] bool is_constant_slot(std::int32_t slot) const;
    /// True when `slot` is a history slot (base+1 .. base+depth of some
    /// rotation group) — written only by the post-step rotation.
    [[nodiscard]] bool is_history_slot(std::int32_t slot) const;
};

/// The view of a layout's fused program. The layout must outlive the view.
/// Aborts (AMSVP_CHECK) when the layout was not compiled with
/// EvalStrategy::kFused.
[[nodiscard]] ProgramView view_of(const runtime::ModelLayout& layout);

/// True when `op` is one of the defined FusedOp values (a corrupted stream
/// can carry any byte).
[[nodiscard]] bool opcode_valid(expr::FusedOp op);

/// Apply `fn(slot, role_index)` to every slot the instruction READS, in
/// operand order. For kLinComb the reads are the term-table slots
/// [a, a+b); role_index is the term index there, and the operand position
/// (0 = a, 1 = b, 2 = c) for every other opcode. Term-table indices out of
/// range are skipped (the structural verifier reports them first).
/// Mirrors FusedProgram::execute_impl — every analysis pass and the
/// compiler's own liveness pass must agree on these roles.
template <typename Fn>
void for_each_read_slot(const expr::FusedInstr& instr,
                        const std::vector<expr::LinTerm>& lin_terms, Fn&& fn) {
    using expr::FusedOp;
    switch (instr.op) {
        case FusedOp::kConst:
            return;  // no reads; a/b/c unused
        case FusedOp::kLinComb:
            for (std::int32_t k = 0; k < instr.b; ++k) {
                const auto idx = static_cast<std::size_t>(instr.a) +
                                 static_cast<std::size_t>(k);
                if (instr.a < 0 || idx >= lin_terms.size()) {
                    continue;
                }
                fn(lin_terms[idx].slot, static_cast<int>(k));
            }
            return;
        case FusedOp::kMulAdd:
        case FusedOp::kMulSub:
        case FusedOp::kMulRSub:
        case FusedOp::kSelect:
            fn(instr.a, 0);
            fn(instr.b, 1);
            fn(instr.c, 2);
            return;
        case FusedOp::kAdd:
        case FusedOp::kSub:
        case FusedOp::kMul:
        case FusedOp::kDiv:
        case FusedOp::kPow:
        case FusedOp::kMin:
        case FusedOp::kMax:
        case FusedOp::kLt:
        case FusedOp::kLe:
        case FusedOp::kGt:
        case FusedOp::kGe:
        case FusedOp::kEq:
        case FusedOp::kNe:
        case FusedOp::kAnd:
        case FusedOp::kOr:
        case FusedOp::kMulAddImm:
            fn(instr.a, 0);
            fn(instr.b, 1);
            return;
        default:  // copy, unary ops, single-operand immediate forms
            fn(instr.a, 0);
            return;
    }
}

}  // namespace amsvp::analysis
