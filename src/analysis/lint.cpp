#include "analysis/lint.hpp"

#include <cmath>
#include <string>
#include <vector>

namespace amsvp::analysis {
namespace {

using expr::FusedInstr;
using expr::FusedOp;

ValueFact fact_of_value(double v) {
    if (std::isnan(v)) {
        return ValueFact::kUnknown;
    }
    if (v == 0.0) {
        return ValueFact::kZero;
    }
    return v > 0.0 ? ValueFact::kPositive : ValueFact::kNegative;
}

bool proves_nonzero(ValueFact f) {
    return f == ValueFact::kPositive || f == ValueFact::kNegative ||
           f == ValueFact::kNonZero;
}

bool proves_nonnegative(ValueFact f) {
    return f == ValueFact::kPositive || f == ValueFact::kNonNegative ||
           f == ValueFact::kZero;
}

bool proves_positive(ValueFact f) { return f == ValueFact::kPositive; }

ValueFact negate(ValueFact f) {
    switch (f) {
        case ValueFact::kPositive:
            return ValueFact::kNegative;
        case ValueFact::kNegative:
            return ValueFact::kPositive;
        case ValueFact::kNonNegative:
            return ValueFact::kNonPositive;
        case ValueFact::kNonPositive:
            return ValueFact::kNonNegative;
        default:
            return f;  // zero, nonzero, unknown are symmetric
    }
}

/// a + b over sign facts.
ValueFact add(ValueFact a, ValueFact b) {
    if (a == ValueFact::kZero) {
        return b;
    }
    if (b == ValueFact::kZero) {
        return a;
    }
    const bool a_pos = proves_positive(a) || a == ValueFact::kNonNegative;
    const bool b_pos = proves_positive(b) || b == ValueFact::kNonNegative;
    if (a_pos && b_pos) {
        return proves_positive(a) || proves_positive(b) ? ValueFact::kPositive
                                                        : ValueFact::kNonNegative;
    }
    const bool a_neg = a == ValueFact::kNegative || a == ValueFact::kNonPositive;
    const bool b_neg = b == ValueFact::kNegative || b == ValueFact::kNonPositive;
    if (a_neg && b_neg) {
        return a == ValueFact::kNegative || b == ValueFact::kNegative
                   ? ValueFact::kNegative
                   : ValueFact::kNonPositive;
    }
    return ValueFact::kUnknown;
}

/// a * b (also a / b when b is provably nonzero) over sign facts.
ValueFact mul(ValueFact a, ValueFact b) {
    if (a == ValueFact::kZero || b == ValueFact::kZero) {
        return ValueFact::kZero;
    }
    if (a == ValueFact::kUnknown || b == ValueFact::kUnknown) {
        return ValueFact::kUnknown;
    }
    const bool strict = proves_nonzero(a) && proves_nonzero(b);
    const bool a_nonneg = proves_nonnegative(a);
    const bool b_nonneg = proves_nonnegative(b);
    const bool a_nonpos = a == ValueFact::kNegative || a == ValueFact::kNonPositive;
    const bool b_nonpos = b == ValueFact::kNegative || b == ValueFact::kNonPositive;
    if ((a_nonneg && b_nonneg) || (a_nonpos && b_nonpos)) {
        return strict ? ValueFact::kPositive : ValueFact::kNonNegative;
    }
    if ((a_nonneg && b_nonpos) || (a_nonpos && b_nonneg)) {
        return strict ? ValueFact::kNegative : ValueFact::kNonPositive;
    }
    return strict ? ValueFact::kNonZero : ValueFact::kUnknown;
}

/// Join (least upper bound): the fact that holds whichever branch a
/// kSelect takes.
ValueFact join(ValueFact a, ValueFact b) {
    if (a == b) {
        return a;
    }
    const bool both_nonneg = proves_nonnegative(a) && proves_nonnegative(b);
    if (both_nonneg) {
        return ValueFact::kNonNegative;
    }
    const bool a_np = a == ValueFact::kNegative || a == ValueFact::kNonPositive ||
                      a == ValueFact::kZero;
    const bool b_np = b == ValueFact::kNegative || b == ValueFact::kNonPositive ||
                      b == ValueFact::kZero;
    if (a_np && b_np) {
        return ValueFact::kNonPositive;
    }
    if (proves_nonzero(a) && proves_nonzero(b)) {
        return ValueFact::kNonZero;
    }
    return ValueFact::kUnknown;
}

/// The transfer function: the fact about dst given the facts about the
/// operands. `f` reads the current fact of a slot.
ValueFact transfer(const FusedInstr& instr,
                   const std::vector<expr::LinTerm>& lin_terms,
                   const std::vector<ValueFact>& facts) {
    // Out-of-range operands (a structurally broken stream) read kUnknown;
    // verify_structure owns reporting them.
    const auto fact = [&](std::int32_t slot) {
        return slot >= 0 && static_cast<std::size_t>(slot) < facts.size()
                   ? facts[static_cast<std::size_t>(slot)]
                   : ValueFact::kUnknown;
    };
    switch (instr.op) {
        case FusedOp::kConst:
            return fact_of_value(instr.imm);
        case FusedOp::kCopy:
            return fact(instr.a);
        case FusedOp::kNeg:
            return negate(fact(instr.a));
        case FusedOp::kExp:
            return ValueFact::kPositive;
        case FusedOp::kAbs: {
            const ValueFact a = fact(instr.a);
            return proves_nonzero(a) ? ValueFact::kPositive : ValueFact::kNonNegative;
        }
        case FusedOp::kSqrt: {
            const ValueFact a = fact(instr.a);
            if (proves_positive(a)) {
                return ValueFact::kPositive;
            }
            return proves_nonnegative(a) ? ValueFact::kNonNegative
                                         : ValueFact::kUnknown;
        }
        case FusedOp::kAdd:
            return add(fact(instr.a), fact(instr.b));
        case FusedOp::kSub:
            return add(fact(instr.a), negate(fact(instr.b)));
        case FusedOp::kMul:
            return mul(fact(instr.a), fact(instr.b));
        case FusedOp::kDiv: {
            const ValueFact b = fact(instr.b);
            return proves_nonzero(b) ? mul(fact(instr.a), b) : ValueFact::kUnknown;
        }
        case FusedOp::kMin: {
            const ValueFact a = fact(instr.a);
            const ValueFact b = fact(instr.b);
            // min keeps lower bounds only when both operands have one.
            return join(a, b);
        }
        case FusedOp::kMax:
            // max(a, b) > 0 when either side is; keep the stronger side.
            return proves_positive(fact(instr.a)) || proves_positive(fact(instr.b))
                       ? ValueFact::kPositive
                       : (proves_nonnegative(fact(instr.a)) ||
                                  proves_nonnegative(fact(instr.b))
                              ? ValueFact::kNonNegative
                              : join(fact(instr.a), fact(instr.b)));
        case FusedOp::kNot:
        case FusedOp::kLt:
        case FusedOp::kLe:
        case FusedOp::kGt:
        case FusedOp::kGe:
        case FusedOp::kEq:
        case FusedOp::kNe:
        case FusedOp::kAnd:
        case FusedOp::kOr:
            return ValueFact::kNonNegative;  // comparisons produce 0 or 1
        case FusedOp::kAddImm:
            return add(fact(instr.a), fact_of_value(instr.imm));
        case FusedOp::kSubImm:
            return add(fact(instr.a), fact_of_value(-instr.imm));
        case FusedOp::kRSubImm:
            return add(fact_of_value(instr.imm), negate(fact(instr.a)));
        case FusedOp::kMulImm:
            return mul(fact(instr.a), fact_of_value(instr.imm));
        case FusedOp::kDivImm:
            return instr.imm != 0.0 ? mul(fact(instr.a), fact_of_value(instr.imm))
                                    : ValueFact::kUnknown;
        case FusedOp::kRDivImm: {
            const ValueFact a = fact(instr.a);
            return proves_nonzero(a) ? mul(fact_of_value(instr.imm), a)
                                     : ValueFact::kUnknown;
        }
        case FusedOp::kMulAdd:
            return add(mul(fact(instr.a), fact(instr.b)), fact(instr.c));
        case FusedOp::kMulSub:
            return add(mul(fact(instr.a), fact(instr.b)), negate(fact(instr.c)));
        case FusedOp::kMulRSub:
            return add(fact(instr.c), negate(mul(fact(instr.a), fact(instr.b))));
        case FusedOp::kMulAddImm:
            return add(mul(fact(instr.a), fact_of_value(instr.imm)), fact(instr.b));
        case FusedOp::kSelect:
            return join(fact(instr.b), fact(instr.c));
        case FusedOp::kLinComb: {
            // Sound but simple: bias plus every term must agree in sign.
            ValueFact acc = fact_of_value(instr.imm);
            for (std::int32_t k = 0; k < instr.b; ++k) {
                const auto idx = static_cast<std::size_t>(instr.a) +
                                 static_cast<std::size_t>(k);
                if (instr.a < 0 || idx >= lin_terms.size()) {
                    return ValueFact::kUnknown;  // structurally broken; verify reports
                }
                const expr::LinTerm& term = lin_terms[idx];
                acc = add(acc, mul(fact(term.slot), fact_of_value(term.coeff)));
            }
            return acc;
        }
        default:
            return ValueFact::kUnknown;  // ln/log10/sin/cos/tan/pow
    }
}

const char* quarantine_hint() {
    return "; only the runtime lane-health quarantine (fault site "
           "sweep.lane_nan) guards this at execution time";
}

}  // namespace

int lint(const ProgramView& view, support::DiagnosticEngine& diags) {
    // Model slots hold arbitrary state at pass entry (kUnknown); pooled
    // constants hold their values. One forward scan is sound on the
    // straight-line body because nothing is assumed across the back edge.
    std::vector<ValueFact> facts(static_cast<std::size_t>(view.total_slot_count()),
                                 ValueFact::kUnknown);
    for (const auto& c : *view.constants) {
        facts[static_cast<std::size_t>(c.first)] = fact_of_value(c.second);
    }

    int hazards = 0;
    const auto flag = [&](std::size_t i, const FusedInstr& instr, std::string what) {
        ++hazards;
        diags.warning({}, "instr #" + std::to_string(i) + " (" +
                              std::string(expr::to_string(instr.op)) + "): " +
                              std::move(what) + quarantine_hint());
    };

    for (std::size_t i = 0; i < view.code->size(); ++i) {
        const FusedInstr& instr = (*view.code)[i];
        const auto fact = [&](std::int32_t slot) {
            return slot >= 0 && static_cast<std::size_t>(slot) < facts.size()
                       ? facts[static_cast<std::size_t>(slot)]
                       : ValueFact::kUnknown;
        };
        switch (instr.op) {
            case FusedOp::kDiv:
                if (!proves_nonzero(fact(instr.b))) {
                    flag(i, instr,
                         "divisor slot " + std::to_string(instr.b) +
                             " not provably nonzero");
                }
                break;
            case FusedOp::kDivImm:
                if (instr.imm == 0.0) {
                    ++hazards;
                    diags.error({}, "instr #" + std::to_string(i) +
                                        " (div_imm): division by constant zero");
                }
                break;
            case FusedOp::kRDivImm:
                if (!proves_nonzero(fact(instr.a))) {
                    flag(i, instr,
                         "divisor slot " + std::to_string(instr.a) +
                             " not provably nonzero");
                }
                break;
            case FusedOp::kLn:
            case FusedOp::kLog10:
                if (!proves_positive(fact(instr.a))) {
                    flag(i, instr,
                         "operand slot " + std::to_string(instr.a) +
                             " not provably positive");
                }
                break;
            case FusedOp::kSqrt:
                if (!proves_nonnegative(fact(instr.a))) {
                    flag(i, instr,
                         "operand slot " + std::to_string(instr.a) +
                             " not provably non-negative");
                }
                break;
            default:
                break;
        }
        if (!std::isfinite(instr.imm)) {
            diags.warning({}, "instr #" + std::to_string(i) +
                                  ": non-finite immediate operand");
            ++hazards;
        }
        if (instr.dst >= 0 && instr.dst < view.total_slot_count() &&
            opcode_valid(instr.op)) {
            facts[static_cast<std::size_t>(instr.dst)] =
                transfer(instr, *view.lin_terms, facts);
        }
    }
    return hazards;
}

}  // namespace amsvp::analysis
