// Lowering conformance: re-verify the program each backend actually runs.
//
// The structural verifier proves the IR itself well-formed; these checks
// prove each *lowering* still carries that IR faithfully. They are
// deliberately shape-level (counts, destinations, operand mentions) rather
// than full parsers of the generated text — strong enough to catch the
// real drift modes (an emitter case falling out of sync with an opcode, a
// dropped statement, rotation reordering, the ORC row width diverging from
// runtime::LaneLayout) while staying cheap enough to run on every
// `codegen_tool --verify`.
//
//  * verify_emit_plan: the C++/SystemC emitters' EmitPlan must carry one
//    statement per fused instruction (scalar and batch forms), each
//    assigning the instruction's dst under the documented addressing
//    (named model slots / `_t<n>` scratch locals / `s[<slot> * S + l]`
//    strided rows), mentioning every non-constant read operand, with one
//    scratch local per distinct scratch register and one rotation
//    statement per history slot.
//  * verify_orc_lowering: the ORC JIT's unoptimized IR must store exactly
//    once per instruction in both entry points, and its batch kernel's
//    vector rows must be exactly LaneLayout::kVectorRow doubles wide.
#pragma once

#include <memory>

#include "support/diagnostics.hpp"

namespace amsvp::runtime {
class ModelLayout;
}  // namespace amsvp::runtime
namespace amsvp::codegen::detail {
struct EmitPlan;
}  // namespace amsvp::codegen::detail

namespace amsvp::analysis {

/// Check `plan` (built from `layout`) against the fused IR. Returns true
/// when conformant; problems are errors in `diags` naming the instruction.
[[nodiscard]] bool verify_emit_plan(const runtime::ModelLayout& layout,
                                    const codegen::detail::EmitPlan& plan,
                                    support::DiagnosticEngine& diags);

/// Lower `layout` through the ORC pipeline and check the unoptimized IR's
/// store counts and vector-row width. Without LLVM (AMSVP_WITH_LLVM=OFF)
/// this records a note and returns true — there is no lowering to drift.
[[nodiscard]] bool verify_orc_lowering(
    const std::shared_ptr<const runtime::ModelLayout>& layout,
    support::DiagnosticEngine& diags);

}  // namespace amsvp::analysis
