#include "analysis/conformance.hpp"

#include <set>
#include <string>

#include "analysis/program_view.hpp"
#include "codegen/emit_common.hpp"
#include "codegen/llvm_lowering.hpp"
#include "runtime/lane_layout.hpp"
#include "runtime/model_layout.hpp"

namespace amsvp::analysis {
namespace {

std::size_t count_occurrences(const std::string& text, const std::string& needle) {
    std::size_t count = 0;
    for (std::size_t pos = text.find(needle); pos != std::string::npos;
         pos = text.find(needle, pos + needle.size())) {
        ++count;
    }
    return count;
}

/// The name the renderer gives `slot`: a model slot's variable name, a
/// scratch register's `_t<n>` local, or (strided mode) its slot-file row.
std::string slot_name(const codegen::detail::EmitPlan& plan, std::int32_t slot,
                      bool strided) {
    if (strided) {
        return "s[" + std::to_string(slot) + " * S + l]";
    }
    if (slot < static_cast<std::int32_t>(plan.slot_names.size())) {
        return plan.slot_names[static_cast<std::size_t>(slot)];
    }
    return "_t" +
           std::to_string(slot - static_cast<std::int32_t>(plan.slot_names.size()));
}

/// Check one rendered statement stream (scalar or batch) against the IR.
void check_statements(const ProgramView& view, const codegen::detail::EmitPlan& plan,
                      const std::vector<std::string>& statements, bool strided,
                      support::DiagnosticEngine& diags) {
    const char* stream = strided ? "batch statement" : "statement";
    if (statements.size() != view.code->size()) {
        diags.error({}, std::string(stream) + " count " +
                            std::to_string(statements.size()) +
                            " != instruction count " +
                            std::to_string(view.code->size()));
        return;
    }
    const std::string loop_prefix = "for (int l = 0; l < L; ++l) ";
    for (std::size_t i = 0; i < statements.size(); ++i) {
        const expr::FusedInstr& instr = (*view.code)[i];
        std::string text = statements[i];
        const std::string prefix =
            "instr #" + std::to_string(i) + ": " + stream + " ";
        if (strided) {
            if (text.rfind(loop_prefix, 0) != 0) {
                diags.error({}, prefix + "missing its lane loop: \"" + text + "\"");
                continue;
            }
            text = text.substr(loop_prefix.size());
        }
        const std::string expected_dst = slot_name(plan, instr.dst, strided) + " = ";
        if (text.rfind(expected_dst, 0) != 0) {
            diags.error({}, prefix + "does not assign dst slot " +
                                std::to_string(instr.dst) + " (expected \"" +
                                expected_dst + "\", got \"" + text + "\")");
            continue;
        }
        const std::string rhs = text.substr(expected_dst.size());
        for_each_read_slot(instr, *view.lin_terms, [&](std::int32_t slot, int role) {
            if (view.is_constant_slot(slot)) {
                return;  // pooled constants inline as literals
            }
            const std::string name = slot_name(plan, slot, strided);
            if (rhs.find(name) == std::string::npos) {
                diags.error({}, prefix + "never reads operand " +
                                    std::to_string(role) + " (slot " +
                                    std::to_string(slot) + ", \"" + name +
                                    "\") in \"" + rhs + "\"");
            }
        });
    }
}

}  // namespace

bool verify_emit_plan(const runtime::ModelLayout& layout,
                      const codegen::detail::EmitPlan& plan,
                      support::DiagnosticEngine& diags) {
    const std::size_t before = diags.error_count();
    const ProgramView view = view_of(layout);

    check_statements(view, plan, plan.assignments, /*strided=*/false, diags);
    if (!plan.batch_statements.empty()) {
        check_statements(view, plan, plan.batch_statements, /*strided=*/true, diags);
    }

    std::set<std::int32_t> scratch_regs;
    for (const expr::FusedInstr& instr : *view.code) {
        if (instr.dst >= view.model_slot_count) {
            scratch_regs.insert(instr.dst);
        }
    }
    if (plan.scratch_locals.size() != scratch_regs.size()) {
        diags.error({}, "scratch local count " +
                            std::to_string(plan.scratch_locals.size()) +
                            " != distinct scratch registers " +
                            std::to_string(scratch_regs.size()));
    }

    std::size_t history_slots = 0;
    for (const auto& r : layout.rotations()) {
        history_slots += static_cast<std::size_t>(r.depth);
    }
    if (plan.rotations.size() != history_slots) {
        diags.error({}, "rotation statement count " +
                            std::to_string(plan.rotations.size()) +
                            " != history slot count " + std::to_string(history_slots));
    }
    if (!plan.batch_statements.empty() &&
        plan.batch_rotations.size() != history_slots) {
        diags.error({}, "batch rotation statement count " +
                            std::to_string(plan.batch_rotations.size()) +
                            " != history slot count " + std::to_string(history_slots));
    }
    if (plan.total_slot_count != view.total_slot_count()) {
        diags.error({}, "plan total_slot_count " +
                            std::to_string(plan.total_slot_count) +
                            " != layout slot count " +
                            std::to_string(view.total_slot_count()));
    }
    return diags.error_count() == before;
}

bool verify_orc_lowering(const std::shared_ptr<const runtime::ModelLayout>& layout,
                         support::DiagnosticEngine& diags) {
    if (!codegen::llvm_backend_available()) {
        diags.note({}, "ORC lowering conformance skipped: built without LLVM");
        return true;
    }
    const std::size_t before = diags.error_count();
    std::string error;
    const auto lowered = codegen::lower_to_ir_text(layout, &error);
    if (!lowered) {
        diags.error({}, "ORC lowering failed: " + error);
        return false;
    }
    const std::size_t instr_count = layout->fused_program().instructions().size();

    // The batch kernel stores one <kVectorRow x double> row per
    // instruction, the scalar step one double — exactly one store each, so
    // the counts in the unoptimized IR must match the instruction count
    // (history rotation uses llvm.memcpy, never a store).
    const std::string vector_store =
        "store <" + std::to_string(runtime::LaneLayout::kVectorRow) + " x double>";
    const std::size_t vector_stores =
        count_occurrences(lowered->unoptimized, vector_store);
    if (vector_stores != instr_count) {
        diags.error({}, "ORC batch kernel: " + std::to_string(vector_stores) + " \"" +
                            vector_store + "\" rows != instruction count " +
                            std::to_string(instr_count) +
                            " (vector row width drifted from runtime::LaneLayout?)");
    }
    const std::size_t scalar_stores =
        count_occurrences(lowered->unoptimized, "store double");
    if (scalar_stores != instr_count) {
        diags.error({}, "ORC scalar step: " + std::to_string(scalar_stores) +
                            " double stores != instruction count " +
                            std::to_string(instr_count));
    }
    return diags.error_count() == before;
}

}  // namespace amsvp::analysis
