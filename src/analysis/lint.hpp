// Numeric-hazard lint over the fused IR.
//
// The runtime's only defense against NaN/Inf escaping a model is *after
// the fact*: the sweep engine's periodic lane-health scan quarantines
// lanes that already went non-finite (support/fault.hpp site
// `sweep.lane_nan`, runtime scan_lane_health). This pass is the static
// half: a forward sign/zero abstract interpretation over the slot file
// flags every division, log and sqrt whose operand is not *provably*
// guarded — e.g. `x / (abs(y) + 1.5)` proves its divisor positive
// (abs ⇒ non-negative, + positive immediate ⇒ positive) and stays quiet,
// while `x / y` on an arbitrary model slot is flagged as reaching the
// quarantine machinery unguarded.
//
// Hazards are warnings (models are allowed to rely on runtime quarantine);
// the one static certainty — division by a literal zero immediate — is an
// error. Facts reason modulo NaN/Inf inputs: "positive" means "positive
// whenever the inputs are finite", which is exactly the guarantee the
// lane-health scan needs to stay the only required runtime guard.
#pragma once

#include "analysis/program_view.hpp"
#include "support/diagnostics.hpp"

namespace amsvp::analysis {

/// What the abstract interpreter could prove about one slot's value at one
/// program point (modulo non-finite inputs). Public for tests.
enum class ValueFact : std::uint8_t {
    kUnknown,
    kZero,
    kPositive,     ///< > 0
    kNegative,     ///< < 0
    kNonNegative,  ///< >= 0
    kNonPositive,  ///< <= 0
    kNonZero,      ///< != 0
};

/// Run the lint; hazard warnings/errors go into `diags`. Returns the
/// number of hazards (flagged operands), 0 for a provably guarded program.
int lint(const ProgramView& view, support::DiagnosticEngine& diags);

}  // namespace amsvp::analysis
