// Conservative transient engine — the ELDO / SPICE stand-in that simulates
// the original Verilog-AMS description without any abstraction.
//
// Per timestep it does what an analog solver does (and what makes it slow,
// per the paper's Section III-B and [5]):
//   1. device evaluation: every constitutive equation's residual is
//      re-evaluated,
//   2. the full system matrix is re-stamped and LU-factorised,
//   3. Newton-Raphson iterates until the update norm converges (linear
//      circuits converge after one solve; a second iteration verifies).
//
// Non-linear constitutive equations are supported through numeric
// finite-difference Jacobian rows.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "expr/bytecode.hpp"
#include "netlist/circuit.hpp"
#include "numeric/lu.hpp"
#include "numeric/matrix.hpp"
#include "numeric/sources.hpp"
#include "numeric/waveform.hpp"

namespace amsvp::spice {

struct SpiceOptions {
    double timestep = 50e-9;       ///< external sampling / synchronization step
    /// Internal refinement: the analog solver advances `internal_substeps`
    /// backward-Euler steps per external step, like a real transient engine
    /// choosing its own (finer) timestep. This is also what gives the
    /// conservative reference a different discretization error than the
    /// abstracted models (the NRMSE column of Table I).
    int internal_substeps = 8;
    double abs_tolerance = 1e-9;   ///< Newton convergence on |dx|
    int min_iterations = 2;        ///< SPICE always re-verifies convergence
    int max_iterations = 50;
};

struct SpiceStats {
    std::uint64_t steps = 0;
    std::uint64_t newton_iterations = 0;
    std::uint64_t factorizations = 0;
    std::uint64_t device_evaluations = 0;
};

class SpiceEngine {
public:
    /// Fails (error set) when an equation references unsupported constructs
    /// (idt) or the initial operating point cannot be found.
    [[nodiscard]] static std::optional<SpiceEngine> create(const netlist::Circuit& circuit,
                                                           const SpiceOptions& options,
                                                           std::string* error = nullptr);

    [[nodiscard]] const std::vector<std::string>& input_names() const { return inputs_; }
    [[nodiscard]] double timestep() const { return options_.timestep; }
    [[nodiscard]] const SpiceStats& stats() const { return stats_; }

    void reset();

    /// Advance one external step (= internal_substeps solver steps) with the
    /// inputs held constant (zero-order hold, as in co-simulation). Returns
    /// false when Newton fails to converge.
    [[nodiscard]] bool step(const std::vector<double>& input_values, double time_seconds);

    /// One internal solver step of size timestep/internal_substeps, with
    /// freshly sampled inputs (used by isolated transient runs where the
    /// solver owns the testbench).
    [[nodiscard]] bool substep(const std::vector<double>& input_values, double time_seconds);

    [[nodiscard]] double node_voltage(std::string_view node_name) const;
    [[nodiscard]] double branch_current(std::string_view branch_name) const;
    [[nodiscard]] double voltage_between(std::string_view pos, std::string_view neg) const;

    /// Convenience: full transient run observing one node-pair voltage.
    [[nodiscard]] numeric::Waveform run_transient(
        const std::map<std::string, numeric::SourceFunction>& stimuli, double duration,
        std::string_view observed_pos, std::string_view observed_neg);

private:
    SpiceEngine() = default;

    /// Residual slot layout: [V(b) per branch | I(b) per branch |
    ///  V_prev(b) | I_prev(b) | inputs | time].
    [[nodiscard]] int slot_of_voltage(netlist::BranchId b, bool prev) const;
    [[nodiscard]] int slot_of_current(netlist::BranchId b, bool prev) const;

    void fill_slots(const numeric::Vector& x, const numeric::Vector& x_prev,
                    const std::vector<double>& input_values, double time_seconds);
    [[nodiscard]] double residual_row(std::size_t row) const;
    void evaluate_residual(const numeric::Vector& x, const numeric::Vector& x_prev,
                           const std::vector<double>& input_values, double time_seconds,
                           numeric::Vector& f);
    void stamp_jacobian(const numeric::Vector& x, const numeric::Vector& x_prev,
                        const std::vector<double>& input_values, double time_seconds,
                        numeric::Matrix& j);

    [[nodiscard]] int node_column(netlist::NodeId node) const;
    [[nodiscard]] int current_column(netlist::BranchId branch) const;

    const netlist::Circuit* circuit_ = nullptr;
    SpiceOptions options_;
    std::vector<std::string> inputs_;
    std::vector<int> node_col_;
    std::size_t size_ = 0;

    struct Row {
        expr::Program residual;                       ///< all rows have one
        bool linear = false;                          ///< static Jacobian available
        std::vector<std::pair<int, double>> jacobian; ///< linear rows
        std::vector<int> depends_on;                  ///< columns (nonlinear FD rows)
    };
    std::vector<Row> rows_;
    mutable std::vector<double> slots_;

    numeric::Vector x_;
    numeric::Vector x_prev_;
    /// Newton scratch, reused across iterations and steps (like the ELN
    /// engine's member buffers): the per-step refactorisation is the paper's
    /// cost model, the allocations around it are not.
    numeric::Matrix jacobian_scratch_;
    numeric::Vector residual_scratch_;
    numeric::Vector fd_x_scratch_;
    numeric::LuFactorization lu_scratch_;
    SpiceStats stats_;
};

}  // namespace amsvp::spice
