#include "spice/engine.hpp"

#include <algorithm>
#include <cmath>

#include "expr/linear_form.hpp"
#include "expr/printer.hpp"
#include "expr/traversal.hpp"
#include "numeric/lu.hpp"
#include "support/check.hpp"
#include "support/step_count.hpp"

namespace amsvp::spice {

using expr::Expr;
using expr::ExprKind;
using expr::ExprPtr;
using expr::LinearForm;
using expr::Symbol;
using expr::SymbolKind;
using netlist::BranchId;
using netlist::Circuit;
using netlist::NodeId;

namespace {

/// Rewrite ddt() to backward-Euler finite differences over symbol history:
/// ddt(q) -> (q - q@(t-dt)) / h, distributed over linear structure.
ExprPtr rewrite_ddt(const ExprPtr& e, double h, std::string* error);

ExprPtr ddt_of(const ExprPtr& operand, double h, std::string* error) {
    switch (operand->kind()) {
        case ExprKind::kConstant:
            return Expr::constant(0.0);
        case ExprKind::kSymbol:
            return Expr::div(Expr::sub(operand, Expr::delayed(operand->symbol(), 1)),
                             Expr::constant(h));
        case ExprKind::kUnary:
            if (operand->unary_op() == expr::UnaryOp::kNeg) {
                ExprPtr inner = ddt_of(operand->operand(), h, error);
                return inner ? Expr::neg(std::move(inner)) : nullptr;
            }
            break;
        case ExprKind::kBinary: {
            const expr::BinaryOp op = operand->binary_op();
            if (op == expr::BinaryOp::kAdd || op == expr::BinaryOp::kSub) {
                ExprPtr l = ddt_of(operand->left(), h, error);
                ExprPtr r = ddt_of(operand->right(), h, error);
                return (l && r) ? Expr::binary(op, std::move(l), std::move(r)) : nullptr;
            }
            if (op == expr::BinaryOp::kMul &&
                operand->left()->kind() == ExprKind::kConstant) {
                ExprPtr inner = ddt_of(operand->right(), h, error);
                return inner ? Expr::mul(operand->left(), std::move(inner)) : nullptr;
            }
            if (op == expr::BinaryOp::kMul &&
                operand->right()->kind() == ExprKind::kConstant) {
                ExprPtr inner = ddt_of(operand->left(), h, error);
                return inner ? Expr::mul(std::move(inner), operand->right()) : nullptr;
            }
            if (op == expr::BinaryOp::kDiv &&
                operand->right()->kind() == ExprKind::kConstant) {
                ExprPtr inner = ddt_of(operand->left(), h, error);
                return inner ? Expr::div(std::move(inner), operand->right()) : nullptr;
            }
            break;
        }
        default:
            break;
    }
    if (error != nullptr) {
        *error = "ddt() of unsupported expression: " + expr::to_string(operand);
    }
    return nullptr;
}

ExprPtr rewrite_ddt(const ExprPtr& e, double h, std::string* error) {
    switch (e->kind()) {
        case ExprKind::kConstant:
        case ExprKind::kSymbol:
        case ExprKind::kDelayed:
            return e;
        case ExprKind::kUnary: {
            ExprPtr a = rewrite_ddt(e->operand(), h, error);
            return a ? Expr::unary(e->unary_op(), std::move(a)) : nullptr;
        }
        case ExprKind::kBinary: {
            ExprPtr l = rewrite_ddt(e->left(), h, error);
            ExprPtr r = rewrite_ddt(e->right(), h, error);
            return (l && r) ? Expr::binary(e->binary_op(), std::move(l), std::move(r))
                            : nullptr;
        }
        case ExprKind::kConditional: {
            ExprPtr c = rewrite_ddt(e->condition(), h, error);
            ExprPtr t = rewrite_ddt(e->then_branch(), h, error);
            ExprPtr f = rewrite_ddt(e->else_branch(), h, error);
            return (c && t && f) ? Expr::conditional(std::move(c), std::move(t), std::move(f))
                                 : nullptr;
        }
        case ExprKind::kDdt: {
            ExprPtr inner = rewrite_ddt(e->operand(), h, error);
            return inner ? ddt_of(inner, h, error) : nullptr;
        }
        case ExprKind::kIdt:
            if (error != nullptr) {
                *error = "idt() is not supported by the transient engine";
            }
            return nullptr;
    }
    return nullptr;
}

}  // namespace

int SpiceEngine::node_column(NodeId node) const {
    return node_col_[static_cast<std::size_t>(node)];
}

int SpiceEngine::current_column(BranchId branch) const {
    return static_cast<int>(circuit_->node_count()) - 1 + branch;
}

int SpiceEngine::slot_of_voltage(BranchId b, bool prev) const {
    const int nb = static_cast<int>(circuit_->branch_count());
    return prev ? 2 * nb + b : b;
}

int SpiceEngine::slot_of_current(BranchId b, bool prev) const {
    const int nb = static_cast<int>(circuit_->branch_count());
    return prev ? 3 * nb + b : nb + b;
}

std::optional<SpiceEngine> SpiceEngine::create(const Circuit& circuit,
                                               const SpiceOptions& options,
                                               std::string* error) {
    AMSVP_CHECK(circuit.has_ground(), "transient engine requires a ground node");
    SpiceEngine e;
    e.circuit_ = &circuit;
    e.options_ = options;
    e.inputs_ = circuit.input_names();

    e.node_col_.assign(circuit.node_count(), -1);
    int col = 0;
    for (NodeId n = 0; n < static_cast<NodeId>(circuit.node_count()); ++n) {
        if (n != circuit.ground()) {
            e.node_col_[static_cast<std::size_t>(n)] = col++;
        }
    }
    e.size_ = circuit.node_count() - 1 + circuit.branch_count();

    const int nb = static_cast<int>(circuit.branch_count());
    const std::size_t slot_count =
        static_cast<std::size_t>(4 * nb) + e.inputs_.size() + 1;
    e.slots_.assign(slot_count, 0.0);

    const expr::SlotResolver resolver = [&e, nb](const Symbol& s, int delay) -> int {
        if (s.kind == SymbolKind::kTime) {
            AMSVP_CHECK(delay == 0, "delayed time reference");
            return 4 * nb + static_cast<int>(e.inputs_.size());
        }
        if (s.kind == SymbolKind::kInput) {
            AMSVP_CHECK(delay == 0, "delayed input in conservative equation");
            const auto it = std::find(e.inputs_.begin(), e.inputs_.end(), s.name);
            AMSVP_CHECK(it != e.inputs_.end(), "unknown input");
            return 4 * nb + static_cast<int>(it - e.inputs_.begin());
        }
        const auto bid = e.circuit_->find_branch(s.name);
        AMSVP_CHECK(bid.has_value(), "unknown branch in equation");
        AMSVP_CHECK(delay <= 1, "only one step of history is kept");
        const bool prev = delay == 1;
        return s.kind == SymbolKind::kBranchVoltage ? e.slot_of_voltage(*bid, prev)
                                                    : e.slot_of_current(*bid, prev);
    };

    // KCL rows.
    for (NodeId n = 0; n < static_cast<NodeId>(circuit.node_count()); ++n) {
        if (n == circuit.ground()) {
            continue;
        }
        ExprPtr residual = Expr::constant(0.0);
        Row row;
        row.linear = true;
        for (const Circuit::Incidence& inc : circuit.incident(n)) {
            const Symbol cur = circuit.branch(inc.branch).current_symbol();
            ExprPtr term = Expr::symbol(cur);
            residual = (inc.sign > 0) ? Expr::add(residual, term)
                                      : Expr::sub(residual, term);
            row.jacobian.emplace_back(e.current_column(inc.branch),
                                      static_cast<double>(inc.sign));
        }
        row.residual = expr::Program::compile(residual, resolver);
        e.rows_.push_back(std::move(row));
    }

    AMSVP_CHECK(options.internal_substeps >= 1, "need at least one internal substep");
    const double h_internal =
        options.timestep / static_cast<double>(options.internal_substeps);

    // Constitutive rows.
    for (BranchId b = 0; b < nb; ++b) {
        const expr::Equation& eq = circuit.dipole_equation(b);
        ExprPtr constraint = Expr::sub(eq.lhs, eq.rhs);
        ExprPtr discretized = rewrite_ddt(constraint, h_internal, error);
        if (!discretized) {
            return std::nullopt;
        }

        Row row;
        row.residual = expr::Program::compile(discretized, resolver);

        // Jacobian: static when the (discretized) constraint is linear in the
        // current-time branch quantities.
        auto form = LinearForm::extract(discretized, expr::branch_quantities_unknown());
        if (form) {
            row.linear = true;
            for (const auto& [key, coeff] : form->coefficients()) {
                AMSVP_CHECK(!key.derivative, "ddt survived rewrite");
                const auto bid = circuit.find_branch(key.symbol.name);
                AMSVP_CHECK(bid.has_value(), "unknown branch");
                if (key.symbol.kind == SymbolKind::kBranchVoltage) {
                    const netlist::Branch& br = circuit.branch(*bid);
                    if (const int cp = e.node_column(br.pos); cp >= 0) {
                        row.jacobian.emplace_back(cp, coeff);
                    }
                    if (const int cn = e.node_column(br.neg); cn >= 0) {
                        row.jacobian.emplace_back(cn, -coeff);
                    }
                } else {
                    row.jacobian.emplace_back(e.current_column(*bid), coeff);
                }
            }
        } else {
            // Columns this row's residual depends on, for finite differences.
            std::vector<int> cols;
            for (const Symbol& s : expr::collect_symbols(discretized)) {
                if (s.kind == SymbolKind::kBranchVoltage) {
                    const auto bid = circuit.find_branch(s.name);
                    AMSVP_CHECK(bid.has_value(), "unknown branch");
                    const netlist::Branch& br = circuit.branch(*bid);
                    if (const int cp = e.node_column(br.pos); cp >= 0) {
                        cols.push_back(cp);
                    }
                    if (const int cn = e.node_column(br.neg); cn >= 0) {
                        cols.push_back(cn);
                    }
                } else if (s.kind == SymbolKind::kBranchCurrent) {
                    const auto bid = circuit.find_branch(s.name);
                    AMSVP_CHECK(bid.has_value(), "unknown branch");
                    cols.push_back(e.current_column(*bid));
                }
            }
            std::sort(cols.begin(), cols.end());
            cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
            row.depends_on = std::move(cols);
        }
        e.rows_.push_back(std::move(row));
    }

    e.x_.assign(e.size_, 0.0);
    e.x_prev_.assign(e.size_, 0.0);
    return e;
}

void SpiceEngine::reset() {
    x_.assign(size_, 0.0);
    x_prev_.assign(size_, 0.0);
    stats_ = {};
}

void SpiceEngine::fill_slots(const numeric::Vector& x, const numeric::Vector& x_prev,
                             const std::vector<double>& input_values, double time_seconds) {
    const int nb = static_cast<int>(circuit_->branch_count());
    auto node_v = [&](const numeric::Vector& v, NodeId n) {
        const int c = node_column(n);
        return c < 0 ? 0.0 : v[static_cast<std::size_t>(c)];
    };
    for (BranchId b = 0; b < nb; ++b) {
        const netlist::Branch& br = circuit_->branch(b);
        slots_[static_cast<std::size_t>(slot_of_voltage(b, false))] =
            node_v(x, br.pos) - node_v(x, br.neg);
        slots_[static_cast<std::size_t>(slot_of_current(b, false))] =
            x[static_cast<std::size_t>(current_column(b))];
        slots_[static_cast<std::size_t>(slot_of_voltage(b, true))] =
            node_v(x_prev, br.pos) - node_v(x_prev, br.neg);
        slots_[static_cast<std::size_t>(slot_of_current(b, true))] =
            x_prev[static_cast<std::size_t>(current_column(b))];
    }
    for (std::size_t i = 0; i < input_values.size(); ++i) {
        slots_[static_cast<std::size_t>(4 * nb) + i] = input_values[i];
    }
    slots_[static_cast<std::size_t>(4 * nb) + inputs_.size()] = time_seconds;
}

void SpiceEngine::evaluate_residual(const numeric::Vector& x, const numeric::Vector& x_prev,
                                    const std::vector<double>& input_values,
                                    double time_seconds, numeric::Vector& f) {
    fill_slots(x, x_prev, input_values, time_seconds);
    f.resize(size_);
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        f[r] = rows_[r].residual.evaluate(slots_.data());
        ++stats_.device_evaluations;
    }
}

void SpiceEngine::stamp_jacobian(const numeric::Vector& x, const numeric::Vector& x_prev,
                                 const std::vector<double>& input_values, double time_seconds,
                                 numeric::Matrix& j) {
    j.reset(size_, size_);
    numeric::Vector& x_fd = fd_x_scratch_;
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        const Row& row = rows_[r];
        if (row.linear) {
            for (const auto& [col, coeff] : row.jacobian) {
                j(r, static_cast<std::size_t>(col)) += coeff;
            }
            continue;
        }
        // Finite differences for non-linear rows.
        fill_slots(x, x_prev, input_values, time_seconds);
        const double f0 = row.residual.evaluate(slots_.data());
        x_fd = x;
        for (const int col : row.depends_on) {
            const double base = x_fd[static_cast<std::size_t>(col)];
            const double eps = 1e-9 * (1.0 + std::fabs(base));
            x_fd[static_cast<std::size_t>(col)] = base + eps;
            fill_slots(x_fd, x_prev, input_values, time_seconds);
            const double f1 = row.residual.evaluate(slots_.data());
            j(r, static_cast<std::size_t>(col)) = (f1 - f0) / eps;
            x_fd[static_cast<std::size_t>(col)] = base;
        }
    }
}

bool SpiceEngine::step(const std::vector<double>& input_values, double time_seconds) {
    const double h = options_.timestep / static_cast<double>(options_.internal_substeps);
    for (int j = 0; j < options_.internal_substeps; ++j) {
        const double t = time_seconds - options_.timestep +
                         static_cast<double>(j + 1) * h;
        if (!substep(input_values, t)) {
            return false;
        }
    }
    return true;
}

bool SpiceEngine::substep(const std::vector<double>& input_values, double time_seconds) {
    AMSVP_CHECK(input_values.size() == inputs_.size(), "input value count mismatch");
    x_prev_ = x_;

    // Member scratch: the Newton loop re-stamps and refactorises every
    // iteration (the paper's cost model) but allocates nothing once warm.
    numeric::Matrix& jacobian = jacobian_scratch_;
    numeric::Vector& residual = residual_scratch_;
    for (int iter = 0; iter < options_.max_iterations; ++iter) {
        ++stats_.newton_iterations;
        evaluate_residual(x_, x_prev_, input_values, time_seconds, residual);
        stamp_jacobian(x_, x_prev_, input_values, time_seconds, jacobian);

        ++stats_.factorizations;
        if (!lu_scratch_.refactorise(jacobian)) {
            return false;
        }
        for (double& v : residual) {
            v = -v;
        }
        lu_scratch_.solve_in_place(residual);  // residual now holds dx
        double dx_norm = 0.0;
        for (std::size_t i = 0; i < size_; ++i) {
            x_[i] += residual[i];
            dx_norm = std::max(dx_norm, std::fabs(residual[i]));
        }
        if (dx_norm < options_.abs_tolerance && iter + 1 >= options_.min_iterations) {
            ++stats_.steps;
            return true;
        }
    }
    return false;
}

double SpiceEngine::node_voltage(std::string_view node_name) const {
    const auto node = circuit_->find_node(node_name);
    AMSVP_CHECK(node.has_value(), "unknown node");
    const int c = node_column(*node);
    return c < 0 ? 0.0 : x_[static_cast<std::size_t>(c)];
}

double SpiceEngine::branch_current(std::string_view branch_name) const {
    const auto branch = circuit_->find_branch(branch_name);
    AMSVP_CHECK(branch.has_value(), "unknown branch");
    return x_[static_cast<std::size_t>(current_column(*branch))];
}

double SpiceEngine::voltage_between(std::string_view pos, std::string_view neg) const {
    return node_voltage(pos) - node_voltage(neg);
}

numeric::Waveform SpiceEngine::run_transient(
    const std::map<std::string, numeric::SourceFunction>& stimuli, double duration,
    std::string_view observed_pos, std::string_view observed_neg) {
    reset();
    std::vector<const numeric::SourceFunction*> sources;
    for (const std::string& name : inputs_) {
        const auto it = stimuli.find(name);
        AMSVP_CHECK(it != stimuli.end(), "missing stimulus");
        sources.push_back(&it->second);
    }
    const double h = options_.timestep;
    const double h_sub = h / static_cast<double>(options_.internal_substeps);
    const std::size_t steps = support::step_count(duration, h);
    numeric::Waveform trace(h, h);
    trace.reserve(steps);
    std::vector<double> inputs(sources.size());
    // Samples at t = h, 2h, ... (the common convention of all backends);
    // internal substeps sample the stimuli at their own finer times, as the
    // analog solver owns the testbench in isolation runs.
    for (std::size_t k = 0; k < steps; ++k) {
        for (int j = 0; j < options_.internal_substeps; ++j) {
            const double t = static_cast<double>(k) * h + static_cast<double>(j + 1) * h_sub;
            for (std::size_t i = 0; i < sources.size(); ++i) {
                inputs[i] = (*sources[i])(t);
            }
            const bool ok = substep(inputs, t);
            AMSVP_CHECK(ok, "transient engine failed to converge");
        }
        trace.append(voltage_between(observed_pos, observed_neg));
    }
    return trace;
}

}  // namespace amsvp::spice
