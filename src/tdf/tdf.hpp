// Timed-dataflow model of computation — the SystemC-AMS/TDF stand-in.
//
// TDF modules exchange samples through rated ports; a cluster of connected
// modules is scheduled *statically* from the producer-consumer topology
// (classic SDF balance equations + token simulation), exactly the execution
// model the paper credits for TDF's speed over ELN: no per-sample dynamic
// scheduling, just a precomputed firing sequence repeated every cluster
// period. A cluster can run standalone or be embedded into the DE kernel as
// a periodic timed event (the SystemC-AMS "TDF cluster inside SystemC time"
// arrangement).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "de/kernel.hpp"
#include "support/check.hpp"

namespace amsvp::tdf {

class TdfCluster;

/// Single-type (double) sample FIFO between two ports. Samples are produced
/// and consumed within one cluster period; capacity equals the tokens
/// exchanged per period.
class TdfBuffer {
public:
    void configure(std::size_t capacity) {
        data_.assign(capacity, 0.0);
        reset_period();
    }
    void reset_period() {
        read_ = 0;
        write_ = 0;
    }
    void push(double v) {
        AMSVP_CHECK(write_ < data_.size(), "TDF buffer overflow");
        data_[write_++] = v;
    }
    [[nodiscard]] double pop() {
        AMSVP_CHECK(read_ < write_, "TDF buffer underflow");
        return data_[read_++];
    }
    [[nodiscard]] std::size_t available() const { return write_ - read_; }

private:
    std::vector<double> data_;
    std::size_t read_ = 0;
    std::size_t write_ = 0;
};

class TdfModule;

/// Input port: consumes `rate` samples per module firing.
class TdfIn {
public:
    explicit TdfIn(TdfModule& owner, std::string name, int rate = 1);

    [[nodiscard]] double read();
    [[nodiscard]] int rate() const { return rate_; }
    [[nodiscard]] const std::string& name() const { return name_; }

private:
    friend class TdfCluster;
    TdfModule& owner_;
    std::string name_;
    int rate_;
    TdfBuffer* buffer_ = nullptr;
};

/// Output port: produces `rate` samples per module firing.
class TdfOut {
public:
    explicit TdfOut(TdfModule& owner, std::string name, int rate = 1);

    void write(double value);
    [[nodiscard]] int rate() const { return rate_; }
    [[nodiscard]] const std::string& name() const { return name_; }

private:
    friend class TdfCluster;
    TdfModule& owner_;
    std::string name_;
    int rate_;
    std::vector<TdfBuffer*> buffers_;  ///< fan-out
};

class TdfModule {
public:
    explicit TdfModule(std::string name) : name_(std::move(name)) {}
    virtual ~TdfModule() = default;

    TdfModule(const TdfModule&) = delete;
    TdfModule& operator=(const TdfModule&) = delete;

    /// Called once after the static schedule is built.
    virtual void initialize() {}
    /// One firing: consume input-rate samples, produce output-rate samples.
    virtual void processing() = 0;

    [[nodiscard]] const std::string& name() const { return name_; }
    /// Time of the current firing (seconds), valid inside processing().
    [[nodiscard]] double time() const { return firing_time_; }
    /// Module period (seconds): cluster period / repetitions.
    [[nodiscard]] double timestep() const { return timestep_; }
    [[nodiscard]] std::uint64_t firing_count() const { return firings_; }

private:
    friend class TdfCluster;
    friend class TdfIn;
    friend class TdfOut;

    std::string name_;
    std::vector<TdfIn*> inputs_;
    std::vector<TdfOut*> outputs_;
    double firing_time_ = 0.0;
    double timestep_ = 0.0;
    std::uint64_t firings_ = 0;
    int repetitions_ = 0;  ///< firings per cluster period
};

/// A connected set of TDF modules with a static schedule.
class TdfCluster {
public:
    /// Register a module. The cluster does not own modules.
    void add(TdfModule& module);

    /// Connect producer to consumer (1:N fan-out supported by connecting the
    /// same output to several inputs).
    void connect(TdfOut& from, TdfIn& to);

    /// Reference timestep: one firing of `reference` takes `seconds`.
    void set_timestep(TdfModule& reference, double seconds);

    /// Solve the balance equations and build the firing sequence. Returns
    /// false with a reason when the graph is inconsistent (rate mismatch) or
    /// deadlocked (cyclic without delays).
    [[nodiscard]] bool elaborate(std::string* error = nullptr);

    /// One cluster period: execute the whole static schedule.
    void step();

    /// Standalone run (no DE kernel) for `duration` seconds.
    void run(double duration);

    /// Embed into a DE simulator: one step() per cluster period, phase 0.
    void attach(de::Simulator& sim);

    [[nodiscard]] double cluster_period() const { return cluster_period_; }
    [[nodiscard]] const std::vector<TdfModule*>& schedule() const { return schedule_; }
    [[nodiscard]] bool elaborated() const { return elaborated_; }

private:
    struct Arc {
        TdfOut* from;
        TdfIn* to;
        std::unique_ptr<TdfBuffer> buffer;
    };

    std::vector<TdfModule*> modules_;
    std::vector<Arc> arcs_;
    std::vector<TdfModule*> schedule_;  ///< static firing sequence
    TdfModule* reference_ = nullptr;
    double reference_timestep_ = 0.0;
    double cluster_period_ = 0.0;
    /// Firing times derive from `base_offset_ + periods_run_ * period` (not
    /// from repeated accumulation) so long runs do not drift in floating
    /// point relative to the other backends' sampling instants.
    double base_offset_ = 0.0;
    std::uint64_t periods_run_ = 0;
    bool elaborated_ = false;
};

}  // namespace amsvp::tdf
