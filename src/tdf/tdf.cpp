#include "tdf/tdf.hpp"

#include <algorithm>
#include <map>
#include <numeric>

#include "support/step_count.hpp"

namespace amsvp::tdf {

TdfIn::TdfIn(TdfModule& owner, std::string name, int rate)
    : owner_(owner), name_(std::move(name)), rate_(rate) {
    AMSVP_CHECK(rate >= 1, "port rate must be positive");
    owner.inputs_.push_back(this);
}

double TdfIn::read() {
    AMSVP_CHECK(buffer_ != nullptr, "TDF input port not connected");
    return buffer_->pop();
}

TdfOut::TdfOut(TdfModule& owner, std::string name, int rate)
    : owner_(owner), name_(std::move(name)), rate_(rate) {
    AMSVP_CHECK(rate >= 1, "port rate must be positive");
    owner.outputs_.push_back(this);
}

void TdfOut::write(double value) {
    AMSVP_CHECK(!buffers_.empty(), "TDF output port not connected");
    for (TdfBuffer* b : buffers_) {
        b->push(value);
    }
}

void TdfCluster::add(TdfModule& module) {
    AMSVP_CHECK(!elaborated_, "cluster already elaborated");
    if (std::find(modules_.begin(), modules_.end(), &module) == modules_.end()) {
        modules_.push_back(&module);
    }
}

void TdfCluster::connect(TdfOut& from, TdfIn& to) {
    AMSVP_CHECK(!elaborated_, "cluster already elaborated");
    AMSVP_CHECK(to.buffer_ == nullptr, "TDF input already connected");
    Arc arc{&from, &to, std::make_unique<TdfBuffer>()};
    from.buffers_.push_back(arc.buffer.get());
    to.buffer_ = arc.buffer.get();
    arcs_.push_back(std::move(arc));
}

void TdfCluster::set_timestep(TdfModule& reference, double seconds) {
    AMSVP_CHECK(seconds > 0.0, "timestep must be positive");
    reference_ = &reference;
    reference_timestep_ = seconds;
}

bool TdfCluster::elaborate(std::string* error) {
    AMSVP_CHECK(!modules_.empty(), "empty TDF cluster");
    AMSVP_CHECK(reference_ != nullptr, "set_timestep() must be called before elaborate()");

    // --- Balance equations: repetitions as rationals, BFS over arcs. ------
    struct Ratio {
        long num = 0;
        long den = 1;
    };
    std::map<TdfModule*, Ratio> ratio;
    ratio[modules_.front()] = Ratio{1, 1};

    bool changed = true;
    while (changed) {
        changed = false;
        for (const Arc& arc : arcs_) {
            TdfModule* src = &arc.from->owner_;
            TdfModule* dst = &arc.to->owner_;
            const bool has_src = ratio.contains(src);
            const bool has_dst = ratio.contains(dst);
            if (has_src == has_dst) {
                if (has_src) {
                    // Consistency: r_src * out_rate == r_dst * in_rate.
                    const Ratio a = ratio[src];
                    const Ratio b = ratio[dst];
                    const long lhs = a.num * arc.from->rate() * b.den;
                    const long rhs = b.num * arc.to->rate() * a.den;
                    if (lhs != rhs) {
                        if (error != nullptr) {
                            *error = "inconsistent TDF rates on arc " + src->name() + " -> " +
                                     dst->name();
                        }
                        return false;
                    }
                }
                continue;
            }
            if (has_src) {
                const Ratio a = ratio[src];
                Ratio b{a.num * arc.from->rate(), a.den * arc.to->rate()};
                const long g = std::gcd(b.num, b.den);
                ratio[dst] = Ratio{b.num / g, b.den / g};
            } else {
                const Ratio b = ratio[dst];
                Ratio a{b.num * arc.to->rate(), b.den * arc.from->rate()};
                const long g = std::gcd(a.num, a.den);
                ratio[src] = Ratio{a.num / g, a.den / g};
            }
            changed = true;
        }
    }
    for (TdfModule* m : modules_) {
        if (!ratio.contains(m)) {
            // Disconnected module: fires once per period.
            ratio[m] = Ratio{1, 1};
        }
    }

    // Scale to the smallest integer repetition vector.
    long lcm_den = 1;
    for (const auto& [m, r] : ratio) {
        lcm_den = std::lcm(lcm_den, r.den);
    }
    long gcd_num = 0;
    for (const auto& [m, r] : ratio) {
        gcd_num = std::gcd(gcd_num, r.num * (lcm_den / r.den));
    }
    for (TdfModule* m : modules_) {
        const Ratio r = ratio[m];
        m->repetitions_ = static_cast<int>(r.num * (lcm_den / r.den) / gcd_num);
        AMSVP_CHECK(m->repetitions_ >= 1, "bad repetition count");
    }

    // --- Static schedule via token simulation. ----------------------------
    std::map<const TdfBuffer*, long> tokens;
    for (const Arc& arc : arcs_) {
        tokens[arc.buffer.get()] = 0;
    }
    std::map<TdfModule*, int> fired;
    schedule_.clear();
    const std::size_t total_firings = [&] {
        std::size_t n = 0;
        for (TdfModule* m : modules_) {
            n += static_cast<std::size_t>(m->repetitions_);
        }
        return n;
    }();

    while (schedule_.size() < total_firings) {
        bool progressed = false;
        for (TdfModule* m : modules_) {
            if (fired[m] >= m->repetitions_) {
                continue;
            }
            bool ready = true;
            for (const TdfIn* in : m->inputs_) {
                if (in->buffer_ == nullptr || tokens[in->buffer_] < in->rate()) {
                    ready = false;
                    break;
                }
            }
            if (!ready) {
                continue;
            }
            for (const TdfIn* in : m->inputs_) {
                tokens[in->buffer_] -= in->rate();
            }
            for (const TdfOut* out : m->outputs_) {
                for (const TdfBuffer* b : out->buffers_) {
                    tokens[b] += out->rate();
                }
            }
            schedule_.push_back(m);
            ++fired[m];
            progressed = true;
        }
        if (!progressed) {
            if (error != nullptr) {
                *error = "TDF cluster deadlocks (cyclic topology without delays)";
            }
            return false;
        }
    }

    // --- Timing and buffer sizing. ----------------------------------------
    cluster_period_ = reference_timestep_ * static_cast<double>(reference_->repetitions_);
    for (TdfModule* m : modules_) {
        m->timestep_ = cluster_period_ / static_cast<double>(m->repetitions_);
    }
    for (Arc& arc : arcs_) {
        arc.buffer->configure(static_cast<std::size_t>(arc.from->rate()) *
                              static_cast<std::size_t>(arc.from->owner_.repetitions_));
    }

    for (TdfModule* m : modules_) {
        m->initialize();
    }
    elaborated_ = true;
    return true;
}

void TdfCluster::step() {
    AMSVP_CHECK(elaborated_, "cluster not elaborated");
    for (Arc& arc : arcs_) {
        arc.buffer->reset_period();
    }
    // The n-th firing (1-based, lifetime) of a module lands at
    // base_offset + n * module_timestep: a single multiplication, so long
    // runs sample at bit-identical instants to the plain-C++ loop (which
    // computes (k+1) * dt the same way).
    for (TdfModule* m : schedule_) {
        m->firing_time_ =
            base_offset_ + static_cast<double>(m->firings_ + 1) * m->timestep_;
        m->processing();
        ++m->firings_;
    }
    ++periods_run_;
}

void TdfCluster::run(double duration) {
    const std::size_t periods = support::step_count(duration, cluster_period_);
    for (std::size_t i = 0; i < periods; ++i) {
        step();
    }
}

void TdfCluster::attach(de::Simulator& sim) {
    AMSVP_CHECK(elaborated_, "cluster not elaborated");
    base_offset_ = de::to_seconds(sim.now());
    periods_run_ = 0;
    // Periodic fast path: one step() per cluster period, the callback stored
    // once in the kernel — no closure churn per period.
    const de::Time period = de::from_seconds(cluster_period_);
    sim.schedule_periodic(sim.now() + period, period, [this] { step(); });
}

}  // namespace amsvp::tdf
