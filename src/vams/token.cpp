#include "vams/token.hpp"

namespace amsvp::vams {

std::string_view to_string(TokenKind kind) {
    switch (kind) {
        case TokenKind::kEnd:
            return "<end>";
        case TokenKind::kIdentifier:
            return "identifier";
        case TokenKind::kNumber:
            return "number";
        case TokenKind::kModule:
            return "module";
        case TokenKind::kEndmodule:
            return "endmodule";
        case TokenKind::kParameter:
            return "parameter";
        case TokenKind::kReal:
            return "real";
        case TokenKind::kElectrical:
            return "electrical";
        case TokenKind::kGround:
            return "ground";
        case TokenKind::kBranch:
            return "branch";
        case TokenKind::kAnalog:
            return "analog";
        case TokenKind::kBegin:
            return "begin";
        case TokenKind::kEndKw:
            return "end";
        case TokenKind::kIf:
            return "if";
        case TokenKind::kElse:
            return "else";
        case TokenKind::kInout:
            return "inout";
        case TokenKind::kInput:
            return "input";
        case TokenKind::kOutput:
            return "output";
        case TokenKind::kLParen:
            return "(";
        case TokenKind::kRParen:
            return ")";
        case TokenKind::kComma:
            return ",";
        case TokenKind::kSemicolon:
            return ";";
        case TokenKind::kAssign:
            return "=";
        case TokenKind::kContrib:
            return "<+";
        case TokenKind::kPlus:
            return "+";
        case TokenKind::kMinus:
            return "-";
        case TokenKind::kStar:
            return "*";
        case TokenKind::kSlash:
            return "/";
        case TokenKind::kQuestion:
            return "?";
        case TokenKind::kColon:
            return ":";
        case TokenKind::kLt:
            return "<";
        case TokenKind::kLe:
            return "<=";
        case TokenKind::kGt:
            return ">";
        case TokenKind::kGe:
            return ">=";
        case TokenKind::kEqEq:
            return "==";
        case TokenKind::kNotEq:
            return "!=";
        case TokenKind::kAndAnd:
            return "&&";
        case TokenKind::kOrOr:
            return "||";
        case TokenKind::kNot:
            return "!";
    }
    return "?";
}

}  // namespace amsvp::vams
