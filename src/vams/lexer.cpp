#include "vams/lexer.hpp"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

namespace amsvp::vams {

namespace {

bool is_identifier_start(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

bool is_identifier_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

const std::unordered_map<std::string_view, TokenKind>& keyword_table() {
    static const std::unordered_map<std::string_view, TokenKind> table = {
        {"module", TokenKind::kModule},   {"endmodule", TokenKind::kEndmodule},
        {"parameter", TokenKind::kParameter}, {"real", TokenKind::kReal},
        {"electrical", TokenKind::kElectrical}, {"ground", TokenKind::kGround},
        {"branch", TokenKind::kBranch},   {"analog", TokenKind::kAnalog},
        {"begin", TokenKind::kBegin},     {"end", TokenKind::kEndKw},
        {"if", TokenKind::kIf},           {"else", TokenKind::kElse},
        {"inout", TokenKind::kInout},     {"input", TokenKind::kInput},
        {"output", TokenKind::kOutput},
    };
    return table;
}

}  // namespace

double scale_factor(char suffix) {
    switch (suffix) {
        case 'T':
            return 1e12;
        case 'G':
            return 1e9;
        case 'M':
            return 1e6;
        case 'K':
        case 'k':
            return 1e3;
        case 'm':
            return 1e-3;
        case 'u':
            return 1e-6;
        case 'n':
            return 1e-9;
        case 'p':
            return 1e-12;
        case 'f':
            return 1e-15;
        case 'a':
            return 1e-18;
        default:
            return 0.0;
    }
}

Lexer::Lexer(std::string_view source, support::DiagnosticEngine& diagnostics)
    : source_(source), diagnostics_(diagnostics) {}

char Lexer::peek(std::size_t ahead) const {
    return pos_ + ahead < source_.size() ? source_[pos_ + ahead] : '\0';
}

char Lexer::advance() {
    const char c = source_[pos_++];
    if (c == '\n') {
        ++line_;
        column_ = 1;
    } else {
        ++column_;
    }
    return c;
}

void Lexer::skip_whitespace_and_comments() {
    while (!at_end()) {
        const char c = peek();
        if (std::isspace(static_cast<unsigned char>(c))) {
            advance();
        } else if (c == '/' && peek(1) == '/') {
            while (!at_end() && peek() != '\n') {
                advance();
            }
        } else if (c == '/' && peek(1) == '*') {
            const support::SourceLocation start = location();
            advance();
            advance();
            bool closed = false;
            while (!at_end()) {
                if (peek() == '*' && peek(1) == '/') {
                    advance();
                    advance();
                    closed = true;
                    break;
                }
                advance();
            }
            if (!closed) {
                diagnostics_.error(start, "unterminated block comment");
            }
        } else {
            break;
        }
    }
}

Token Lexer::lex_identifier() {
    const support::SourceLocation loc = location();
    std::string text;
    while (!at_end() && is_identifier_char(peek())) {
        text.push_back(advance());
    }
    auto it = keyword_table().find(text);
    if (it != keyword_table().end()) {
        return Token{it->second, std::move(text), 0.0, loc};
    }
    return Token{TokenKind::kIdentifier, std::move(text), 0.0, loc};
}

Token Lexer::lex_number() {
    const support::SourceLocation loc = location();
    std::string text;
    while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
        text.push_back(advance());
    }
    if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
        text.push_back(advance());
        while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
            text.push_back(advance());
        }
    }
    if (peek() == 'e' || peek() == 'E') {
        const char next = peek(1);
        const char next2 = peek(2);
        if (std::isdigit(static_cast<unsigned char>(next)) ||
            ((next == '+' || next == '-') && std::isdigit(static_cast<unsigned char>(next2)))) {
            text.push_back(advance());
            if (peek() == '+' || peek() == '-') {
                text.push_back(advance());
            }
            while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
                text.push_back(advance());
            }
        }
    }
    double value = std::strtod(text.c_str(), nullptr);
    // Verilog-AMS scale suffix (must not be followed by identifier chars,
    // otherwise "5kOhm" style spellings would silently mis-lex).
    if (!at_end()) {
        const double factor = scale_factor(peek());
        if (factor != 0.0 && !is_identifier_char(peek(1))) {
            advance();
            value *= factor;
        }
    }
    Token t{TokenKind::kNumber, std::move(text), value, loc};
    return t;
}

Token Lexer::lex_operator() {
    const support::SourceLocation loc = location();
    const char c = advance();
    auto two_char = [&](char second, TokenKind double_kind, TokenKind single_kind) {
        if (peek() == second) {
            advance();
            return double_kind;
        }
        return single_kind;
    };
    TokenKind kind;
    switch (c) {
        case '(':
            kind = TokenKind::kLParen;
            break;
        case ')':
            kind = TokenKind::kRParen;
            break;
        case ',':
            kind = TokenKind::kComma;
            break;
        case ';':
            kind = TokenKind::kSemicolon;
            break;
        case '+':
            kind = TokenKind::kPlus;
            break;
        case '-':
            kind = TokenKind::kMinus;
            break;
        case '*':
            kind = TokenKind::kStar;
            break;
        case '/':
            kind = TokenKind::kSlash;
            break;
        case '?':
            kind = TokenKind::kQuestion;
            break;
        case ':':
            kind = TokenKind::kColon;
            break;
        case '=':
            kind = two_char('=', TokenKind::kEqEq, TokenKind::kAssign);
            break;
        case '<':
            if (peek() == '+') {
                advance();
                kind = TokenKind::kContrib;
            } else {
                kind = two_char('=', TokenKind::kLe, TokenKind::kLt);
            }
            break;
        case '>':
            kind = two_char('=', TokenKind::kGe, TokenKind::kGt);
            break;
        case '!':
            kind = two_char('=', TokenKind::kNotEq, TokenKind::kNot);
            break;
        case '&':
            if (peek() == '&') {
                advance();
                kind = TokenKind::kAndAnd;
            } else {
                diagnostics_.error(loc, "unexpected character '&'");
                kind = TokenKind::kEnd;
            }
            break;
        case '|':
            if (peek() == '|') {
                advance();
                kind = TokenKind::kOrOr;
            } else {
                diagnostics_.error(loc, "unexpected character '|'");
                kind = TokenKind::kEnd;
            }
            break;
        default:
            diagnostics_.error(loc, std::string("unexpected character '") + c + "'");
            kind = TokenKind::kEnd;
            break;
    }
    return Token{kind, "", 0.0, loc};
}

std::vector<Token> Lexer::tokenize() {
    std::vector<Token> out;
    while (true) {
        skip_whitespace_and_comments();
        if (at_end()) {
            out.push_back(Token{TokenKind::kEnd, "", 0.0, location()});
            break;
        }
        const char c = peek();
        if (is_identifier_start(c)) {
            out.push_back(lex_identifier());
        } else if (std::isdigit(static_cast<unsigned char>(c))) {
            out.push_back(lex_number());
        } else {
            Token t = lex_operator();
            if (t.kind != TokenKind::kEnd) {
                out.push_back(t);
            }
        }
    }
    return out;
}

}  // namespace amsvp::vams
