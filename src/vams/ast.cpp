#include "vams/ast.hpp"

#include "support/check.hpp"

namespace amsvp::vams {

std::string encode_node_pair(std::string_view pos, std::string_view neg) {
    std::string out(pos);
    out += ':';
    out += neg;
    return out;
}

bool is_node_pair(std::string_view symbol_name) {
    return symbol_name.find(':') != std::string_view::npos;
}

NodePair decode_node_pair(std::string_view symbol_name) {
    const std::size_t colon = symbol_name.find(':');
    AMSVP_CHECK(colon != std::string_view::npos, "not a node-pair placeholder");
    return NodePair{std::string(symbol_name.substr(0, colon)),
                    std::string(symbol_name.substr(colon + 1))};
}

namespace {

std::size_t count_statements(const Statement& s) {
    std::size_t n = 1;
    switch (s.kind) {
        case Statement::Kind::kIf:
            if (s.then_branch) {
                n += count_statements(*s.then_branch);
            }
            if (s.else_branch) {
                n += count_statements(*s.else_branch);
            }
            break;
        case Statement::Kind::kBlock:
            for (const StatementPtr& child : s.body) {
                n += count_statements(*child);
            }
            break;
        default:
            break;
    }
    return n;
}

}  // namespace

std::size_t Module::statement_count() const {
    std::size_t n = 0;
    for (const StatementPtr& s : analog) {
        n += count_statements(*s);
    }
    return n;
}

}  // namespace amsvp::vams
