// Lexer for the Verilog-AMS subset. Handles // and /* */ comments and the
// Verilog-AMS scale-factor suffixes on numeric literals (5k, 25n, 1.6M, ...).
#pragma once

#include <vector>

#include "support/diagnostics.hpp"
#include "vams/token.hpp"

namespace amsvp::vams {

class Lexer {
public:
    Lexer(std::string_view source, support::DiagnosticEngine& diagnostics);

    /// Tokenise the whole buffer; the final token is always kEnd. Lexical
    /// errors are reported to the diagnostic engine and skipped.
    [[nodiscard]] std::vector<Token> tokenize();

private:
    [[nodiscard]] char peek(std::size_t ahead = 0) const;
    char advance();
    [[nodiscard]] bool at_end() const { return pos_ >= source_.size(); }
    [[nodiscard]] support::SourceLocation location() const { return {line_, column_}; }

    void skip_whitespace_and_comments();
    [[nodiscard]] Token lex_identifier();
    [[nodiscard]] Token lex_number();
    [[nodiscard]] Token lex_operator();

    std::string_view source_;
    support::DiagnosticEngine& diagnostics_;
    std::size_t pos_ = 0;
    std::uint32_t line_ = 1;
    std::uint32_t column_ = 1;
};

/// Scale factor for a Verilog-AMS suffix character; 0 when not a suffix.
[[nodiscard]] double scale_factor(char suffix);

}  // namespace amsvp::vams
