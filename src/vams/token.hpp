// Token definitions for the Verilog-AMS subset accepted by the frontend.
#pragma once

#include <string>
#include <string_view>

#include "support/source_location.hpp"

namespace amsvp::vams {

enum class TokenKind {
    kEnd,         ///< end of input
    kIdentifier,  ///< names, including $-prefixed system identifiers
    kNumber,      ///< real literal with optional Verilog-AMS scale suffix
    // Keywords.
    kModule,
    kEndmodule,
    kParameter,
    kReal,
    kElectrical,
    kGround,
    kBranch,
    kAnalog,
    kBegin,
    kEndKw,
    kIf,
    kElse,
    kInout,
    kInput,
    kOutput,
    // Punctuation / operators.
    kLParen,
    kRParen,
    kComma,
    kSemicolon,
    kAssign,      ///< =
    kContrib,     ///< <+
    kPlus,
    kMinus,
    kStar,
    kSlash,
    kQuestion,
    kColon,
    kLt,
    kLe,
    kGt,
    kGe,
    kEqEq,
    kNotEq,
    kAndAnd,
    kOrOr,
    kNot,
};

[[nodiscard]] std::string_view to_string(TokenKind kind);

struct Token {
    TokenKind kind = TokenKind::kEnd;
    std::string text;           ///< identifier spelling (empty otherwise)
    double number = 0.0;        ///< numeric value with scale factor applied
    support::SourceLocation location;
};

}  // namespace amsvp::vams
