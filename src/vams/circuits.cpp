#include "vams/circuits.hpp"

#include "support/check.hpp"
#include "support/strings.hpp"

namespace amsvp::vams {

std::string rc_ladder_source(int stages, double r_ohms, double c_farads) {
    AMSVP_CHECK(stages >= 1, "ladder needs at least one stage");
    std::string src;
    src += "// n-order RC filter built by cascading RC stages (Section V-A).\n";
    src += "module rc" + std::to_string(stages) + "(in, out, gnd);\n";
    src += "  electrical in, out, gnd";
    for (int i = 1; i < stages; ++i) {
        src += ", n" + std::to_string(i);
    }
    src += ";\n";
    src += "  ground gnd;\n";
    src += "  parameter real R = " + support::format_double(r_ohms) + ";\n";
    src += "  parameter real C = " + support::format_double(c_farads) + ";\n";
    src += "  analog begin\n";
    src += "    V(in, gnd) <+ u0;\n";
    std::string prev = "in";
    for (int i = 1; i <= stages; ++i) {
        const std::string mid = (i == stages) ? "out" : "n" + std::to_string(i);
        src += "    I(" + prev + ", " + mid + ") <+ V(" + prev + ", " + mid + ") / R;\n";
        src += "    I(" + mid + ", gnd) <+ C * ddt(V(" + mid + ", gnd));\n";
        prev = mid;
    }
    src += "  end\n";
    src += "endmodule\n";
    return src;
}

std::string two_inputs_source() {
    return R"(// Two-inputs summing amplifier (Fig. 8a) around the op-amp
// macromodel of Fig. 8b. Paper parameters: R1=3k, R2=14k, R3=10k.
module two_inputs(in1, in2, out, gnd);
  electrical in1, in2, inv, eo, out, gnd;
  ground gnd;
  parameter real R1   = 3k;
  parameter real R2   = 14k;
  parameter real R3   = 10k;
  parameter real RIN  = 1M;
  parameter real ROUT = 20;
  parameter real A    = 100k;
  analog begin
    V(in1, gnd) <+ u0;
    V(in2, gnd) <+ u1;
    I(in1, inv) <+ V(in1, inv) / R1;
    I(in2, inv) <+ V(in2, inv) / R2;
    I(inv, out) <+ V(inv, out) / R3;
    // Op-amp macromodel: differential input resistance and an inverting
    // controlled source behind the output resistance.
    I(inv, gnd) <+ V(inv, gnd) / RIN;
    V(eo, gnd)  <+ -A * V(inv, gnd);
    I(eo, out)  <+ V(eo, out) / ROUT;
  end
endmodule
)";
}

std::string opamp_source() {
    return R"(// Active low-pass filter built around the operational amplifier of
// Fig. 8b (the Verilog-AMS description shown in Fig. 2). Paper parameters:
// R1=400, R2=1.6k, C1=40n, Rin=1M, Rout=20.
module opamp_filter(in, out, gnd);
  electrical in, inv, eo, out, gnd;     // block (a): declarations
  ground gnd;
  parameter real R1   = 400;
  parameter real R2   = 1.6k;
  parameter real C1   = 40n;
  parameter real RIN  = 1M;
  parameter real ROUT = 20;
  parameter real A    = 100k;
  analog begin
    // block (b): input drive (signal-flow style boundary)
    V(in, gnd) <+ u0;
    // block (c): conservative network
    I(in, inv)  <+ V(in, inv) / R1;
    I(inv, out) <+ V(inv, out) / R2;
    I(inv, out) <+ C1 * ddt(V(inv, out));
    I(inv, gnd) <+ V(inv, gnd) / RIN;
    V(eo, gnd)  <+ -A * V(inv, gnd);
    I(eo, out)  <+ V(eo, out) / ROUT;
  end
endmodule
)";
}

std::string signal_flow_lowpass_source() {
    return R"(// Pure signal-flow first-order low-pass: x' = (u - x) / tau.
// Matches Eq. 1 of the paper; converted statement-by-statement.
module sf_lowpass(out);
  electrical out;
  parameter real TAU = 125u;
  real x;
  analog begin
    x = idt((u0 - x) / TAU);
    V(out) <+ x;
  end
endmodule
)";
}

}  // namespace amsvp::vams
