// Abstract syntax tree for parsed Verilog-AMS modules.
//
// Expressions are represented directly as expr::ExprPtr. Access functions
// V(a,b) / I(a,b) are parsed into branch-quantity symbols whose name encodes
// the node pair as "a:b" (':' cannot appear in identifiers); the elaborator
// later rewrites these placeholders to the symbols of real branches.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "expr/expr.hpp"
#include "support/source_location.hpp"

namespace amsvp::vams {

/// Encode / decode the node-pair placeholder used inside parsed expressions.
[[nodiscard]] std::string encode_node_pair(std::string_view pos, std::string_view neg);
[[nodiscard]] bool is_node_pair(std::string_view symbol_name);
struct NodePair {
    std::string pos;
    std::string neg;
};
[[nodiscard]] NodePair decode_node_pair(std::string_view symbol_name);

struct Parameter {
    std::string name;
    expr::ExprPtr value;  ///< constant expression (may reference earlier parameters)
    support::SourceLocation location;
};

struct BranchDecl {
    std::string name;
    std::string pos;
    std::string neg;
    support::SourceLocation location;
};

struct Statement;
using StatementPtr = std::unique_ptr<Statement>;

struct Statement {
    enum class Kind {
        kContribution,  ///< V(a,b) <+ rhs  or  I(a,b) <+ rhs
        kAssign,        ///< real variable assignment
        kIf,
        kBlock,
    };

    Kind kind = Kind::kBlock;
    support::SourceLocation location;

    // kContribution.
    bool contributes_flow = false;  ///< true for I(...), false for V(...)
    std::string pos;                ///< access target nodes (neg empty = reference)
    std::string neg;
    expr::ExprPtr rhs;

    // kAssign.
    std::string target;

    // kIf.
    expr::ExprPtr condition;
    StatementPtr then_branch;
    StatementPtr else_branch;

    // kBlock.
    std::vector<StatementPtr> body;
};

struct Module {
    std::string name;
    std::vector<std::string> ports;
    std::vector<std::string> nets;     ///< electrical net names (ports included)
    std::vector<std::string> grounds;  ///< nets declared `ground`
    std::vector<Parameter> parameters;
    std::vector<BranchDecl> branch_decls;
    std::vector<std::string> real_variables;
    std::vector<StatementPtr> analog;  ///< statements of the analog block
    support::SourceLocation location;

    /// Total number of statements, recursively.
    [[nodiscard]] std::size_t statement_count() const;
};

}  // namespace amsvp::vams
