// Verilog-AMS sources of the paper's test circuits (Section V-A and Fig. 8),
// bundled as strings so examples/tests/benches run without external files.
#pragma once

#include <string>

namespace amsvp::vams {

/// n-stage RC ladder (paper: R = 5 kOhm, C = 25 nF per stage). Input "u0".
[[nodiscard]] std::string rc_ladder_source(int stages, double r_ohms = 5e3,
                                           double c_farads = 25e-9);

/// Two-inputs summing amplifier of Fig. 8a (R1 = 3k, R2 = 14k, R3 = 10k)
/// with the op-amp macromodel of Fig. 8b. Inputs "u0", "u1".
[[nodiscard]] std::string two_inputs_source();

/// Operational-amplifier active low-pass filter of Fig. 8b / Fig. 2
/// (R1 = 400, R2 = 1.6k, C1 = 40n, Rin = 1M, Rout = 20). Input "u0".
[[nodiscard]] std::string opamp_source();

/// A pure signal-flow first-order low-pass (Eq. 1 shape): demonstrates the
/// direct conversion path for non-conservative descriptions. Input "u0".
[[nodiscard]] std::string signal_flow_lowpass_source();

}  // namespace amsvp::vams
