// Recursive-descent parser for the Verilog-AMS subset (Section III of the
// paper: declarations, signal-flow statements and conservative contribution
// statements, conditionals, math functions, ddt/idt analog operators).
#pragma once

#include <optional>

#include "support/diagnostics.hpp"
#include "vams/ast.hpp"
#include "vams/token.hpp"

namespace amsvp::vams {

class Parser {
public:
    Parser(std::vector<Token> tokens, support::DiagnosticEngine& diagnostics);

    /// Parse one module. Returns nullopt when errors prevented recovery; in
    /// that case the diagnostic engine holds at least one error.
    [[nodiscard]] std::optional<Module> parse_module();

private:
    [[nodiscard]] const Token& current() const { return tokens_[pos_]; }
    [[nodiscard]] const Token& peek(std::size_t ahead = 1) const;
    [[nodiscard]] bool at(TokenKind kind) const { return current().kind == kind; }
    Token consume();
    bool accept(TokenKind kind);
    bool expect(TokenKind kind, std::string_view context);
    void error_here(std::string message);

    // Declarations.
    void parse_port_list(Module& module);
    void parse_declaration(Module& module);
    void parse_net_declaration(Module& module);
    void parse_parameter(Module& module);
    void parse_branch_decl(Module& module);
    void parse_real_decl(Module& module);

    // Statements.
    [[nodiscard]] StatementPtr parse_statement();
    [[nodiscard]] StatementPtr parse_block();
    [[nodiscard]] StatementPtr parse_if();

    // Expressions (precedence climbing).
    [[nodiscard]] expr::ExprPtr parse_expression();
    [[nodiscard]] expr::ExprPtr parse_ternary();
    [[nodiscard]] expr::ExprPtr parse_or();
    [[nodiscard]] expr::ExprPtr parse_and();
    [[nodiscard]] expr::ExprPtr parse_equality();
    [[nodiscard]] expr::ExprPtr parse_relational();
    [[nodiscard]] expr::ExprPtr parse_additive();
    [[nodiscard]] expr::ExprPtr parse_multiplicative();
    [[nodiscard]] expr::ExprPtr parse_unary();
    [[nodiscard]] expr::ExprPtr parse_primary();

    /// V(a[,b]) / I(a[,b]) after the access-function identifier.
    [[nodiscard]] expr::ExprPtr parse_access_function(bool is_flow);

    std::vector<Token> tokens_;
    support::DiagnosticEngine& diagnostics_;
    std::size_t pos_ = 0;
};

/// Convenience: lex + parse a buffer.
[[nodiscard]] std::optional<Module> parse_module_source(std::string_view source,
                                                        support::DiagnosticEngine& diagnostics);

}  // namespace amsvp::vams
