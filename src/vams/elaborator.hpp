// Elaboration: parsed Verilog-AMS module -> netlist::Circuit.
//
// This is Step 1 (Acquisition) of the paper's flow as far as conservative
// models are concerned: every contribution statement becomes one branch of
// G = (N, B) carrying its constitutive equation, parameters are folded to
// numeric constants, and access functions V(a,b)/I(a,b) inside right-hand
// sides are resolved to the corresponding branch quantities. Voltage probes
// are inserted automatically for voltage accesses on node pairs that no
// branch spans.
#pragma once

#include <map>
#include <optional>

#include "netlist/circuit.hpp"
#include "support/diagnostics.hpp"
#include "vams/ast.hpp"

namespace amsvp::vams {

struct ElaborationResult {
    netlist::Circuit circuit;
    std::vector<std::string> inputs;  ///< external stimuli in first-use order
};

/// Instance parameter overrides (the `#(.R(10k))` of a Verilog-AMS
/// instantiation): values here replace the module's declared defaults.
using ParameterOverrides = std::map<std::string, double>;

/// Elaborate a conservative module. Reports problems (unsupported statements,
/// unresolved accesses, non-constant parameters, overrides naming unknown
/// parameters) to `diagnostics` and returns nullopt when any error was
/// emitted.
[[nodiscard]] std::optional<ElaborationResult> elaborate(
    const Module& module, support::DiagnosticEngine& diagnostics,
    const ParameterOverrides& overrides = {});

/// True when the module is a pure signal-flow description (Eq. 1 of the
/// paper): no two-terminal conservative accesses, only assignments to real
/// variables and contributions to single-node outputs. Such modules bypass
/// the conservative abstraction and are converted statement-by-statement.
[[nodiscard]] bool is_signal_flow(const Module& module);

}  // namespace amsvp::vams
