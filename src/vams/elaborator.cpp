#include "vams/elaborator.hpp"

#include <algorithm>
#include <unordered_map>

#include "expr/printer.hpp"
#include "expr/traversal.hpp"
#include "support/check.hpp"

namespace amsvp::vams {

using expr::Equation;
using expr::EquationKind;
using expr::Expr;
using expr::ExprKind;
using expr::ExprPtr;
using expr::Symbol;
using expr::SymbolKind;
using netlist::BranchId;
using netlist::Circuit;
using netlist::DeviceKind;

namespace {

/// Collected contribution after flattening blocks.
struct FlatContribution {
    bool is_flow = false;
    std::string pos;
    std::string neg;
    ExprPtr rhs;
    support::SourceLocation location;
};

class ElaboratorImpl {
public:
    ElaboratorImpl(const Module& module, support::DiagnosticEngine& diagnostics,
                   const ParameterOverrides& overrides)
        : module_(module), diagnostics_(diagnostics), overrides_(overrides),
          circuit_(module.name) {}

    std::optional<ElaborationResult> run() {
        declare_nodes();
        fold_parameters();
        collect_contributions();
        if (diagnostics_.has_errors()) {
            return std::nullopt;
        }
        create_branches();
        resolve_accesses();
        if (diagnostics_.has_errors()) {
            return std::nullopt;
        }
        const std::vector<std::string> problems = circuit_.validate();
        for (const std::string& p : problems) {
            diagnostics_.error(module_.location, "elaborated circuit invalid: " + p);
        }
        if (diagnostics_.has_errors()) {
            return std::nullopt;
        }
        ElaborationResult result;
        result.inputs = circuit_.input_names();
        result.circuit = std::move(circuit_);
        return result;
    }

private:
    void declare_nodes() {
        for (const std::string& port : module_.ports) {
            circuit_.node(port);
        }
        for (const std::string& net : module_.nets) {
            circuit_.node(net);
        }
        for (const std::string& g : module_.grounds) {
            circuit_.set_ground(circuit_.node(g));
        }
        if (!circuit_.has_ground()) {
            if (auto gnd = circuit_.find_node("gnd")) {
                circuit_.set_ground(*gnd);
            }
        }
        if (!circuit_.has_ground()) {
            diagnostics_.error(module_.location,
                               "module has no ground net (declare `ground g;` or a net named "
                               "'gnd')");
        }
    }

    void fold_parameters() {
        for (const auto& [name, value] : overrides_) {
            const bool declared =
                std::any_of(module_.parameters.begin(), module_.parameters.end(),
                            [&n = name](const Parameter& p) { return p.name == n; });
            if (!declared) {
                diagnostics_.error(module_.location,
                                   "override names unknown parameter '" + name + "'");
            }
        }
        for (const Parameter& p : module_.parameters) {
            if (const auto it = overrides_.find(p.name); it != overrides_.end()) {
                parameter_values_[expr::variable_symbol(p.name)] =
                    Expr::constant(it->second);
                continue;
            }
            if (!p.value) {
                diagnostics_.error(p.location, "parameter '" + p.name + "' has no value");
                continue;
            }
            // Substitute previously folded parameters, then require a
            // constant.
            ExprPtr value = expr::substitute(p.value, parameter_values_);
            if (value->kind() != ExprKind::kConstant) {
                diagnostics_.error(p.location,
                                   "parameter '" + p.name + "' is not a constant expression: " +
                                       expr::to_string(value));
                continue;
            }
            parameter_values_[expr::variable_symbol(p.name)] = value;
        }
    }

    void collect_contributions() {
        for (const StatementPtr& s : module_.analog) {
            collect_from(*s);
        }
        if (contributions_.empty()) {
            diagnostics_.error(module_.location, "module has no contribution statements");
        }
    }

    void collect_from(const Statement& s) {
        switch (s.kind) {
            case Statement::Kind::kBlock:
                for (const StatementPtr& child : s.body) {
                    collect_from(*child);
                }
                break;
            case Statement::Kind::kContribution: {
                FlatContribution c;
                c.is_flow = s.contributes_flow;
                c.pos = s.pos;
                c.neg = s.neg;
                c.rhs = expr::substitute(s.rhs, parameter_values_);
                c.location = s.location;
                contributions_.push_back(std::move(c));
                break;
            }
            case Statement::Kind::kAssign:
                diagnostics_.error(s.location,
                                   "variable assignments are only supported in signal-flow "
                                   "modules (use the behavioural converter)");
                break;
            case Statement::Kind::kIf:
                diagnostics_.error(s.location,
                                   "conditional statements are only supported in signal-flow "
                                   "modules (use conditional expressions instead)");
                break;
        }
    }

    /// Preferred branch name: a declared `branch (a,b) name;` not used yet,
    /// otherwise a synthesised "B<k>".
    std::string branch_name_for(const std::string& pos, const std::string& neg) {
        for (const BranchDecl& decl : module_.branch_decls) {
            if (decl.pos == pos && decl.neg == neg &&
                !circuit_.find_branch(decl.name).has_value()) {
                return decl.name;
            }
        }
        return "B" + std::to_string(next_branch_index_++);
    }

    std::string resolve_reference_node(const std::string& neg) {
        if (!neg.empty()) {
            return neg;
        }
        // Single-node access references ground.
        return circuit_.node_info(circuit_.ground()).name;
    }

    void create_branches() {
        for (FlatContribution& c : contributions_) {
            const std::string neg = resolve_reference_node(c.neg);
            if (!circuit_.find_node(c.pos)) {
                diagnostics_.error(c.location, "undeclared node '" + c.pos + "'");
                continue;
            }
            if (!circuit_.find_node(neg)) {
                diagnostics_.error(c.location, "undeclared node '" + neg + "'");
                continue;
            }
            netlist::Branch b;
            b.name = branch_name_for(c.pos, neg);
            b.pos = *circuit_.find_node(c.pos);
            b.neg = *circuit_.find_node(neg);
            b.kind = DeviceKind::kGeneric;

            const Symbol lhs = c.is_flow ? b.current_symbol() : b.voltage_symbol();
            Equation eq = expr::make_equation(EquationKind::kDipole, lhs, c.rhs,
                                              "dipole(" + b.name + ")");
            const BranchId id = circuit_.add_branch(std::move(b), std::move(eq));
            contribution_branch_.push_back(id);
        }
    }

    /// Map a node-pair placeholder to the branch spanning it; insert a probe
    /// when a voltage access names a pair without a branch. `self` is the
    /// branch owning the expression (its own pair resolves to itself).
    std::optional<BranchId> branch_for_pair(const NodePair& pair, BranchId self,
                                            bool is_voltage_access,
                                            support::SourceLocation loc) {
        const auto pos = circuit_.find_node(pair.pos);
        const std::string neg_name = resolve_reference_node(pair.neg);
        const auto neg = circuit_.find_node(neg_name);
        if (!pos || !neg) {
            diagnostics_.error(loc, "access references undeclared node '" +
                                        (pos ? neg_name : pair.pos) + "'");
            return std::nullopt;
        }
        const netlist::Branch& own = circuit_.branch(self);
        if (own.pos == *pos && own.neg == *neg) {
            return self;
        }
        if (auto found = circuit_.find_branch_between(*pos, *neg)) {
            return found;
        }
        if (!is_voltage_access) {
            diagnostics_.error(loc, "flow access I(" + pair.pos + ", " + neg_name +
                                        ") does not name an existing branch");
            return std::nullopt;
        }
        // Insert an open probe branch so the voltage is well-defined.
        netlist::Branch probe;
        probe.name = "P" + std::to_string(next_probe_index_++);
        probe.pos = *pos;
        probe.neg = *neg;
        probe.kind = DeviceKind::kProbe;
        Equation eq = expr::make_equation(EquationKind::kDipole, probe.current_symbol(),
                                          Expr::constant(0.0), "dipole(" + probe.name + ")");
        return circuit_.add_branch(std::move(probe), std::move(eq));
    }

    /// Orientation sign of the access (pos, neg) against branch `id`.
    int orientation(const NodePair& pair, BranchId id) {
        const netlist::Branch& b = circuit_.branch(id);
        const auto pos = circuit_.find_node(pair.pos);
        AMSVP_CHECK(pos.has_value(), "checked earlier");
        return (b.pos == *pos) ? +1 : -1;
    }

    void resolve_accesses() {
        for (std::size_t i = 0; i < contribution_branch_.size(); ++i) {
            const BranchId self = contribution_branch_[i];
            const support::SourceLocation loc = contributions_[i].location;
            bool failed = false;

            ExprPtr resolved = expr::rewrite(
                circuit_.dipole_equation(self).rhs, [&](const ExprPtr& node) -> ExprPtr {
                    if (node->kind() != ExprKind::kSymbol) {
                        return node;
                    }
                    const Symbol& s = node->symbol();
                    if ((s.kind == SymbolKind::kBranchVoltage ||
                         s.kind == SymbolKind::kBranchCurrent) &&
                        is_node_pair(s.name)) {
                        const NodePair pair = decode_node_pair(s.name);
                        const bool is_voltage = s.kind == SymbolKind::kBranchVoltage;
                        auto target = branch_for_pair(pair, self, is_voltage, loc);
                        if (!target) {
                            failed = true;
                            return node;
                        }
                        const netlist::Branch& tb = circuit_.branch(*target);
                        Symbol mapped = is_voltage ? tb.voltage_symbol() : tb.current_symbol();
                        ExprPtr out = Expr::symbol(std::move(mapped));
                        if (orientation(pair, *target) < 0) {
                            out = Expr::neg(std::move(out));
                        }
                        return out;
                    }
                    if (s.kind == SymbolKind::kVariable) {
                        // Real variables are not allowed in conservative
                        // contributions; everything else is an external input.
                        if (std::find(module_.real_variables.begin(),
                                      module_.real_variables.end(),
                                      s.name) != module_.real_variables.end()) {
                            diagnostics_.error(loc, "real variable '" + s.name +
                                                        "' used in conservative contribution");
                            failed = true;
                            return node;
                        }
                        return Expr::symbol(expr::input_symbol(s.name));
                    }
                    return node;
                });

            if (!failed) {
                update_equation(self, std::move(resolved));
                classify_branch(self);
            }
        }
    }

    void update_equation(BranchId id, ExprPtr new_rhs) {
        circuit_.set_equation_rhs(id, std::move(new_rhs));
    }

    /// Best-effort device classification for reporting and engine hints.
    void classify_branch(BranchId id) {
        netlist::Branch& b = circuit_.mutable_branch(id);
        const Equation& eq = circuit_.dipole_equation(id);
        const bool lhs_is_flow = eq.lhs_key().symbol.kind == SymbolKind::kBranchCurrent;
        const ExprPtr& rhs = eq.rhs;

        if (rhs->kind() == ExprKind::kConstant) {
            b.kind = (lhs_is_flow && rhs->constant_value() == 0.0) ? DeviceKind::kProbe
                                                                   : DeviceKind::kGeneric;
            return;
        }
        if (rhs->kind() == ExprKind::kSymbol && rhs->symbol().kind == SymbolKind::kInput) {
            b.kind = lhs_is_flow ? DeviceKind::kCurrentSource : DeviceKind::kVoltageSource;
            b.input = rhs->symbol().name;
            return;
        }
        // I(b) = V(b) / R
        if (lhs_is_flow && rhs->kind() == ExprKind::kBinary &&
            rhs->binary_op() == expr::BinaryOp::kDiv &&
            rhs->left()->kind() == ExprKind::kSymbol &&
            rhs->left()->symbol() == b.voltage_symbol() &&
            rhs->right()->kind() == ExprKind::kConstant) {
            b.kind = DeviceKind::kResistor;
            b.value = rhs->right()->constant_value();
            return;
        }
        // I(b) = C * ddt(V(b))  /  V(b) = L * ddt(I(b))
        if (rhs->kind() == ExprKind::kBinary && rhs->binary_op() == expr::BinaryOp::kMul &&
            rhs->left()->kind() == ExprKind::kConstant &&
            rhs->right()->kind() == ExprKind::kDdt &&
            rhs->right()->operand()->kind() == ExprKind::kSymbol) {
            const Symbol& inner = rhs->right()->operand()->symbol();
            if (lhs_is_flow && inner == b.voltage_symbol()) {
                b.kind = DeviceKind::kCapacitor;
                b.value = rhs->left()->constant_value();
                return;
            }
            if (!lhs_is_flow && inner == b.current_symbol()) {
                b.kind = DeviceKind::kInductor;
                b.value = rhs->left()->constant_value();
                return;
            }
        }
        // V(b) = K * V(other)  /  I(b) = G * V(other)
        if (rhs->kind() == ExprKind::kBinary && rhs->binary_op() == expr::BinaryOp::kMul &&
            rhs->left()->kind() == ExprKind::kConstant) {
            ExprPtr ctrl = rhs->right();
            double gain = rhs->left()->constant_value();
            if (ctrl->kind() == ExprKind::kUnary && ctrl->unary_op() == expr::UnaryOp::kNeg) {
                gain = -gain;
                ctrl = ctrl->operand();
            }
            if (ctrl->kind() == ExprKind::kSymbol &&
                ctrl->symbol().kind == SymbolKind::kBranchVoltage) {
                if (auto control = circuit_.find_branch(ctrl->symbol().name)) {
                    b.kind = lhs_is_flow ? DeviceKind::kVccs : DeviceKind::kVcvs;
                    b.value = gain;
                    b.control = *control;
                    return;
                }
            }
        }
        b.kind = DeviceKind::kGeneric;
    }

    const Module& module_;
    support::DiagnosticEngine& diagnostics_;
    const ParameterOverrides& overrides_;
    Circuit circuit_;
    expr::Substitution parameter_values_;
    std::vector<FlatContribution> contributions_;
    std::vector<BranchId> contribution_branch_;
    int next_branch_index_ = 0;
    int next_probe_index_ = 0;
};

bool statement_is_signal_flow(const Statement& s) {
    switch (s.kind) {
        case Statement::Kind::kAssign:
            return true;
        case Statement::Kind::kContribution:
            // Signal-flow outputs are single-node potential contributions.
            return !s.contributes_flow && s.neg.empty();
        case Statement::Kind::kIf: {
            const bool then_ok = !s.then_branch || statement_is_signal_flow(*s.then_branch);
            const bool else_ok = !s.else_branch || statement_is_signal_flow(*s.else_branch);
            return then_ok && else_ok;
        }
        case Statement::Kind::kBlock:
            return std::all_of(s.body.begin(), s.body.end(), [](const StatementPtr& child) {
                return statement_is_signal_flow(*child);
            });
    }
    return false;
}

}  // namespace

std::optional<ElaborationResult> elaborate(const Module& module,
                                           support::DiagnosticEngine& diagnostics,
                                           const ParameterOverrides& overrides) {
    ElaboratorImpl impl(module, diagnostics, overrides);
    return impl.run();
}

bool is_signal_flow(const Module& module) {
    bool has_two_terminal_access = false;
    for (const StatementPtr& s : module.analog) {
        if (!statement_is_signal_flow(*s)) {
            return false;
        }
    }
    // Also reject conservative accesses inside right-hand sides.
    std::function<void(const Statement&)> scan = [&](const Statement& s) {
        auto scan_expr = [&](const ExprPtr& e) {
            if (!e) {
                return;
            }
            expr::visit(e, [&](const ExprPtr& node) {
                if (node->kind() == ExprKind::kSymbol) {
                    const Symbol& sym = node->symbol();
                    if ((sym.kind == SymbolKind::kBranchVoltage ||
                         sym.kind == SymbolKind::kBranchCurrent) &&
                        is_node_pair(sym.name) && !decode_node_pair(sym.name).neg.empty()) {
                        has_two_terminal_access = true;
                    }
                    if (sym.kind == SymbolKind::kBranchCurrent) {
                        has_two_terminal_access = true;  // any flow access is conservative
                    }
                }
                return true;
            });
        };
        scan_expr(s.rhs);
        scan_expr(s.condition);
        if (s.then_branch) {
            scan(*s.then_branch);
        }
        if (s.else_branch) {
            scan(*s.else_branch);
        }
        for (const StatementPtr& child : s.body) {
            scan(*child);
        }
    };
    for (const StatementPtr& s : module.analog) {
        scan(*s);
    }
    return !has_two_terminal_access && !module.analog.empty();
}

}  // namespace amsvp::vams
