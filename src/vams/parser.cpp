#include "vams/parser.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "vams/lexer.hpp"

namespace amsvp::vams {

using expr::BinaryOp;
using expr::Expr;
using expr::ExprPtr;
using expr::UnaryOp;

Parser::Parser(std::vector<Token> tokens, support::DiagnosticEngine& diagnostics)
    : tokens_(std::move(tokens)), diagnostics_(diagnostics) {
    AMSVP_CHECK(!tokens_.empty() && tokens_.back().kind == TokenKind::kEnd,
                "token stream must end with kEnd");
}

const Token& Parser::peek(std::size_t ahead) const {
    const std::size_t idx = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[idx];
}

Token Parser::consume() {
    Token t = tokens_[pos_];
    if (pos_ + 1 < tokens_.size()) {
        ++pos_;
    }
    return t;
}

bool Parser::accept(TokenKind kind) {
    if (at(kind)) {
        consume();
        return true;
    }
    return false;
}

bool Parser::expect(TokenKind kind, std::string_view context) {
    if (accept(kind)) {
        return true;
    }
    diagnostics_.error(current().location, "expected '" + std::string(to_string(kind)) +
                                               "' in " + std::string(context) + ", found '" +
                                               std::string(to_string(current().kind)) + "'");
    return false;
}

void Parser::error_here(std::string message) {
    diagnostics_.error(current().location, std::move(message));
}

std::optional<Module> Parser::parse_module() {
    Module module;
    module.location = current().location;
    if (!expect(TokenKind::kModule, "module header")) {
        return std::nullopt;
    }
    if (!at(TokenKind::kIdentifier)) {
        error_here("expected module name");
        return std::nullopt;
    }
    module.name = consume().text;
    if (accept(TokenKind::kLParen)) {
        parse_port_list(module);
    }
    expect(TokenKind::kSemicolon, "module header");

    while (!at(TokenKind::kEndmodule) && !at(TokenKind::kEnd)) {
        if (at(TokenKind::kAnalog)) {
            consume();
            StatementPtr body = parse_statement();
            if (body) {
                module.analog.push_back(std::move(body));
            }
        } else {
            parse_declaration(module);
        }
        if (diagnostics_.error_count() > 20) {
            return std::nullopt;  // too broken to keep recovering
        }
    }
    expect(TokenKind::kEndmodule, "module");
    if (diagnostics_.has_errors()) {
        return std::nullopt;
    }
    return module;
}

void Parser::parse_port_list(Module& module) {
    if (accept(TokenKind::kRParen)) {
        return;
    }
    do {
        if (!at(TokenKind::kIdentifier)) {
            error_here("expected port name");
            break;
        }
        module.ports.push_back(consume().text);
    } while (accept(TokenKind::kComma));
    expect(TokenKind::kRParen, "port list");
}

void Parser::parse_declaration(Module& module) {
    switch (current().kind) {
        case TokenKind::kInout:
        case TokenKind::kInput:
        case TokenKind::kOutput:
            consume();
            // Direction keywords may prefix an electrical declaration or a
            // bare port direction list; both reduce to net declarations here.
            if (at(TokenKind::kElectrical)) {
                consume();
            }
            parse_net_declaration(module);
            break;
        case TokenKind::kElectrical:
            consume();
            parse_net_declaration(module);
            break;
        case TokenKind::kGround: {
            consume();
            do {
                if (!at(TokenKind::kIdentifier)) {
                    error_here("expected net name after 'ground'");
                    break;
                }
                module.grounds.push_back(consume().text);
            } while (accept(TokenKind::kComma));
            expect(TokenKind::kSemicolon, "ground declaration");
            break;
        }
        case TokenKind::kParameter:
            consume();
            parse_parameter(module);
            break;
        case TokenKind::kBranch:
            consume();
            parse_branch_decl(module);
            break;
        case TokenKind::kReal:
            consume();
            parse_real_decl(module);
            break;
        default:
            error_here("unexpected token '" + std::string(to_string(current().kind)) +
                       "' at module scope");
            consume();  // skip to make progress
            break;
    }
}

void Parser::parse_net_declaration(Module& module) {
    do {
        if (!at(TokenKind::kIdentifier)) {
            error_here("expected net name");
            break;
        }
        std::string name = consume().text;
        if (std::find(module.nets.begin(), module.nets.end(), name) == module.nets.end()) {
            module.nets.push_back(std::move(name));
        }
    } while (accept(TokenKind::kComma));
    expect(TokenKind::kSemicolon, "net declaration");
}

void Parser::parse_parameter(Module& module) {
    accept(TokenKind::kReal);  // `parameter real NAME = value;`
    if (!at(TokenKind::kIdentifier)) {
        error_here("expected parameter name");
        return;
    }
    Parameter p;
    p.location = current().location;
    p.name = consume().text;
    if (!expect(TokenKind::kAssign, "parameter declaration")) {
        return;
    }
    p.value = parse_expression();
    expect(TokenKind::kSemicolon, "parameter declaration");
    module.parameters.push_back(std::move(p));
}

void Parser::parse_branch_decl(Module& module) {
    // branch (a, b) name1 [, name2 ...] ;
    if (!expect(TokenKind::kLParen, "branch declaration")) {
        return;
    }
    BranchDecl decl;
    decl.location = current().location;
    if (!at(TokenKind::kIdentifier)) {
        error_here("expected node name in branch declaration");
        return;
    }
    decl.pos = consume().text;
    if (accept(TokenKind::kComma)) {
        if (!at(TokenKind::kIdentifier)) {
            error_here("expected node name in branch declaration");
            return;
        }
        decl.neg = consume().text;
    }
    expect(TokenKind::kRParen, "branch declaration");
    do {
        if (!at(TokenKind::kIdentifier)) {
            error_here("expected branch name");
            break;
        }
        BranchDecl named = decl;
        named.name = consume().text;
        module.branch_decls.push_back(std::move(named));
    } while (accept(TokenKind::kComma));
    expect(TokenKind::kSemicolon, "branch declaration");
}

void Parser::parse_real_decl(Module& module) {
    do {
        if (!at(TokenKind::kIdentifier)) {
            error_here("expected variable name");
            break;
        }
        module.real_variables.push_back(consume().text);
    } while (accept(TokenKind::kComma));
    expect(TokenKind::kSemicolon, "real declaration");
}

StatementPtr Parser::parse_statement() {
    switch (current().kind) {
        case TokenKind::kBegin:
            return parse_block();
        case TokenKind::kIf:
            return parse_if();
        case TokenKind::kIdentifier: {
            auto stmt = std::make_unique<Statement>();
            stmt->location = current().location;
            const std::string head = current().text;
            // Access-function contribution: V(...)/I(...) followed by <+.
            if ((head == "V" || head == "I") && peek().kind == TokenKind::kLParen) {
                consume();  // V / I
                consume();  // (
                if (!at(TokenKind::kIdentifier)) {
                    error_here("expected node name in access function");
                    return nullptr;
                }
                stmt->pos = consume().text;
                if (accept(TokenKind::kComma)) {
                    if (!at(TokenKind::kIdentifier)) {
                        error_here("expected node name in access function");
                        return nullptr;
                    }
                    stmt->neg = consume().text;
                }
                expect(TokenKind::kRParen, "access function");
                stmt->kind = Statement::Kind::kContribution;
                stmt->contributes_flow = (head == "I");
                if (!expect(TokenKind::kContrib, "contribution statement")) {
                    return nullptr;
                }
                stmt->rhs = parse_expression();
                expect(TokenKind::kSemicolon, "contribution statement");
                return stmt;
            }
            // Plain assignment to a real variable.
            stmt->kind = Statement::Kind::kAssign;
            stmt->target = consume().text;
            if (!expect(TokenKind::kAssign, "assignment")) {
                return nullptr;
            }
            stmt->rhs = parse_expression();
            expect(TokenKind::kSemicolon, "assignment");
            return stmt;
        }
        default:
            error_here("expected statement");
            consume();
            return nullptr;
    }
}

StatementPtr Parser::parse_block() {
    auto stmt = std::make_unique<Statement>();
    stmt->kind = Statement::Kind::kBlock;
    stmt->location = current().location;
    expect(TokenKind::kBegin, "block");
    while (!at(TokenKind::kEndKw) && !at(TokenKind::kEnd)) {
        StatementPtr child = parse_statement();
        if (child) {
            stmt->body.push_back(std::move(child));
        }
        if (diagnostics_.error_count() > 20) {
            break;
        }
    }
    expect(TokenKind::kEndKw, "block");
    return stmt;
}

StatementPtr Parser::parse_if() {
    auto stmt = std::make_unique<Statement>();
    stmt->kind = Statement::Kind::kIf;
    stmt->location = current().location;
    expect(TokenKind::kIf, "if statement");
    expect(TokenKind::kLParen, "if condition");
    stmt->condition = parse_expression();
    expect(TokenKind::kRParen, "if condition");
    stmt->then_branch = parse_statement();
    if (accept(TokenKind::kElse)) {
        stmt->else_branch = parse_statement();
    }
    return stmt;
}

ExprPtr Parser::parse_expression() {
    return parse_ternary();
}

ExprPtr Parser::parse_ternary() {
    ExprPtr cond = parse_or();
    if (!cond) {
        return nullptr;
    }
    if (accept(TokenKind::kQuestion)) {
        ExprPtr then_branch = parse_ternary();
        expect(TokenKind::kColon, "conditional expression");
        ExprPtr else_branch = parse_ternary();
        if (!then_branch || !else_branch) {
            return nullptr;
        }
        return Expr::conditional(std::move(cond), std::move(then_branch), std::move(else_branch));
    }
    return cond;
}

ExprPtr Parser::parse_or() {
    ExprPtr lhs = parse_and();
    while (lhs && at(TokenKind::kOrOr)) {
        consume();
        ExprPtr rhs = parse_and();
        if (!rhs) {
            return nullptr;
        }
        lhs = Expr::binary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
}

ExprPtr Parser::parse_and() {
    ExprPtr lhs = parse_equality();
    while (lhs && at(TokenKind::kAndAnd)) {
        consume();
        ExprPtr rhs = parse_equality();
        if (!rhs) {
            return nullptr;
        }
        lhs = Expr::binary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
}

ExprPtr Parser::parse_equality() {
    ExprPtr lhs = parse_relational();
    while (lhs && (at(TokenKind::kEqEq) || at(TokenKind::kNotEq))) {
        const BinaryOp op = at(TokenKind::kEqEq) ? BinaryOp::kEq : BinaryOp::kNe;
        consume();
        ExprPtr rhs = parse_relational();
        if (!rhs) {
            return nullptr;
        }
        lhs = Expr::binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
}

ExprPtr Parser::parse_relational() {
    ExprPtr lhs = parse_additive();
    while (lhs && (at(TokenKind::kLt) || at(TokenKind::kLe) || at(TokenKind::kGt) ||
                   at(TokenKind::kGe))) {
        BinaryOp op = BinaryOp::kLt;
        if (at(TokenKind::kLe)) {
            op = BinaryOp::kLe;
        } else if (at(TokenKind::kGt)) {
            op = BinaryOp::kGt;
        } else if (at(TokenKind::kGe)) {
            op = BinaryOp::kGe;
        }
        consume();
        ExprPtr rhs = parse_additive();
        if (!rhs) {
            return nullptr;
        }
        lhs = Expr::binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
}

ExprPtr Parser::parse_additive() {
    ExprPtr lhs = parse_multiplicative();
    while (lhs && (at(TokenKind::kPlus) || at(TokenKind::kMinus))) {
        const BinaryOp op = at(TokenKind::kPlus) ? BinaryOp::kAdd : BinaryOp::kSub;
        consume();
        ExprPtr rhs = parse_multiplicative();
        if (!rhs) {
            return nullptr;
        }
        lhs = Expr::binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
}

ExprPtr Parser::parse_multiplicative() {
    ExprPtr lhs = parse_unary();
    while (lhs && (at(TokenKind::kStar) || at(TokenKind::kSlash))) {
        const BinaryOp op = at(TokenKind::kStar) ? BinaryOp::kMul : BinaryOp::kDiv;
        consume();
        ExprPtr rhs = parse_unary();
        if (!rhs) {
            return nullptr;
        }
        lhs = Expr::binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
}

ExprPtr Parser::parse_unary() {
    if (accept(TokenKind::kMinus)) {
        ExprPtr operand = parse_unary();
        return operand ? Expr::neg(std::move(operand)) : nullptr;
    }
    if (accept(TokenKind::kPlus)) {
        return parse_unary();
    }
    if (accept(TokenKind::kNot)) {
        ExprPtr operand = parse_unary();
        return operand ? Expr::unary(UnaryOp::kNot, std::move(operand)) : nullptr;
    }
    return parse_primary();
}

ExprPtr Parser::parse_access_function(bool is_flow) {
    // Caller consumed the 'V'/'I' identifier; current token is '('.
    expect(TokenKind::kLParen, "access function");
    if (!at(TokenKind::kIdentifier)) {
        error_here("expected node name in access function");
        return nullptr;
    }
    const std::string pos = consume().text;
    std::string neg;
    if (accept(TokenKind::kComma)) {
        if (!at(TokenKind::kIdentifier)) {
            error_here("expected node name in access function");
            return nullptr;
        }
        neg = consume().text;
    }
    expect(TokenKind::kRParen, "access function");
    const std::string pair = encode_node_pair(pos, neg);
    return Expr::symbol(is_flow ? expr::branch_current(pair) : expr::branch_voltage(pair));
}

ExprPtr Parser::parse_primary() {
    switch (current().kind) {
        case TokenKind::kNumber: {
            const Token t = consume();
            return Expr::constant(t.number);
        }
        case TokenKind::kLParen: {
            consume();
            ExprPtr inner = parse_expression();
            expect(TokenKind::kRParen, "parenthesised expression");
            return inner;
        }
        case TokenKind::kIdentifier: {
            const std::string name = current().text;
            if (peek().kind == TokenKind::kLParen) {
                if (name == "V" || name == "I") {
                    consume();
                    return parse_access_function(name == "I");
                }
                // Function call.
                consume();  // name
                consume();  // (
                std::vector<ExprPtr> args;
                if (!at(TokenKind::kRParen)) {
                    do {
                        ExprPtr arg = parse_expression();
                        if (!arg) {
                            return nullptr;
                        }
                        args.push_back(std::move(arg));
                    } while (accept(TokenKind::kComma));
                }
                expect(TokenKind::kRParen, "function call");

                auto unary_fn = [&](UnaryOp op) -> ExprPtr {
                    if (args.size() != 1) {
                        error_here(name + "() expects one argument");
                        return nullptr;
                    }
                    return Expr::unary(op, std::move(args[0]));
                };
                auto binary_fn = [&](BinaryOp op) -> ExprPtr {
                    if (args.size() != 2) {
                        error_here(name + "() expects two arguments");
                        return nullptr;
                    }
                    return Expr::binary(op, std::move(args[0]), std::move(args[1]));
                };

                if (name == "ddt") {
                    if (args.size() != 1) {
                        error_here("ddt() expects one argument");
                        return nullptr;
                    }
                    return Expr::ddt(std::move(args[0]));
                }
                if (name == "idt") {
                    if (args.size() != 1) {
                        error_here("idt() expects one argument");
                        return nullptr;
                    }
                    return Expr::idt(std::move(args[0]));
                }
                if (name == "exp") {
                    return unary_fn(UnaryOp::kExp);
                }
                if (name == "ln") {
                    return unary_fn(UnaryOp::kLn);
                }
                if (name == "log") {
                    return unary_fn(UnaryOp::kLog10);
                }
                if (name == "sqrt") {
                    return unary_fn(UnaryOp::kSqrt);
                }
                if (name == "sin") {
                    return unary_fn(UnaryOp::kSin);
                }
                if (name == "cos") {
                    return unary_fn(UnaryOp::kCos);
                }
                if (name == "tan") {
                    return unary_fn(UnaryOp::kTan);
                }
                if (name == "abs") {
                    return unary_fn(UnaryOp::kAbs);
                }
                if (name == "pow") {
                    return binary_fn(BinaryOp::kPow);
                }
                if (name == "min") {
                    return binary_fn(BinaryOp::kMin);
                }
                if (name == "max") {
                    return binary_fn(BinaryOp::kMax);
                }
                error_here("unknown function '" + name + "'");
                return nullptr;
            }
            consume();
            if (name == "$abstime") {
                return Expr::symbol(expr::time_symbol());
            }
            // Bare identifier: parameter, real variable, or external input.
            // The elaborator decides which; parse as a generic variable.
            return Expr::symbol(expr::variable_symbol(name));
        }
        default:
            error_here("expected expression");
            consume();
            return nullptr;
    }
}

std::optional<Module> parse_module_source(std::string_view source,
                                          support::DiagnosticEngine& diagnostics) {
    Lexer lexer(source, diagnostics);
    std::vector<Token> tokens = lexer.tokenize();
    if (diagnostics.has_errors()) {
        return std::nullopt;
    }
    Parser parser(std::move(tokens), diagnostics);
    return parser.parse_module();
}

}  // namespace amsvp::vams
