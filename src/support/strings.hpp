// Small string utilities shared by the frontend, code generators and tools.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace amsvp::support {

/// Remove leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view text);

/// Split on a separator character; empty fields are preserved.
[[nodiscard]] std::vector<std::string_view> split(std::string_view text, char separator);

/// Split on any run of ASCII whitespace; empty fields are dropped.
[[nodiscard]] std::vector<std::string_view> split_whitespace(std::string_view text);

/// Join pieces with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& pieces, std::string_view separator);

/// True when `text` starts with / ends with the given prefix or suffix.
[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix);
[[nodiscard]] bool ends_with(std::string_view text, std::string_view suffix);

/// Lower-case an ASCII string.
[[nodiscard]] std::string to_lower(std::string_view text);

/// Format a double the way our code generators print literals: shortest
/// round-trippable representation (e.g. "0.001", "5e-08").
[[nodiscard]] std::string format_double(double value);

/// Indent every line of `text` by `spaces` spaces.
[[nodiscard]] std::string indent(std::string_view text, int spaces);

}  // namespace amsvp::support
