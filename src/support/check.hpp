// Precondition / invariant checking.
//
// AMSVP_CHECK is always on (also in Release builds): the library is a
// simulation tool where silently wrong answers are worse than an abort, and
// the checks guard structural invariants (index bounds, graph consistency)
// whose cost is negligible next to the numerical work.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace amsvp::support::detail {

[[noreturn]] inline void check_failed(const char* condition, const char* file, int line,
                                      const char* message) {
    std::fprintf(stderr, "amsvp check failed: %s (%s:%d): %s\n", condition, file, line, message);
    std::abort();
}

}  // namespace amsvp::support::detail

#define AMSVP_CHECK(condition, message)                                                     \
    do {                                                                                    \
        if (!(condition)) {                                                                 \
            ::amsvp::support::detail::check_failed(#condition, __FILE__, __LINE__, message); \
        }                                                                                   \
    } while (false)
