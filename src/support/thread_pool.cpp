#include "support/thread_pool.hpp"

#include <stdexcept>
#include <string>

#include "support/check.hpp"
#include "support/fault.hpp"

namespace amsvp::support {

ThreadPool::ThreadPool(int workers) {
    AMSVP_CHECK(workers >= 1, "a pool needs at least one worker (the caller)");
    threads_.reserve(static_cast<std::size_t>(workers - 1));
    for (int i = 0; i < workers - 1; ++i) {
        threads_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread& t : threads_) {
        t.join();
    }
}

int ThreadPool::hardware_threads() {
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
}

void ThreadPool::run_one(const std::function<void(int)>& task, int index) {
    try {
        if (fault::should_fire("pool.worker", index)) {
            throw std::runtime_error("injected fault: pool.worker (task " +
                                     std::to_string(index) + ")");
        }
        task(index);
    } catch (...) {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (error_ == nullptr) {
            error_ = std::current_exception();
            cancel_.store(true, std::memory_order_relaxed);
        }
        // Abandon the unclaimed tail of the job: nobody will run those
        // indices, so they must not be waited for.
        pending_ -= count_ - next_;
        next_ = count_;
        if (--pending_ == 0) {
            done_.notify_all();
        }
        return;
    }
    const std::lock_guard<std::mutex> lock(mutex_);
    if (--pending_ == 0) {
        done_.notify_all();
    }
}

void ThreadPool::run(int count, const std::function<void(int)>& task) {
    if (count <= 0) {
        return;
    }
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        AMSVP_CHECK(task_ == nullptr, "ThreadPool::run does not nest");
        task_ = &task;
        count_ = count;
        next_ = 0;
        pending_ = count;
        error_ = nullptr;
        cancel_.store(false, std::memory_order_relaxed);
    }
    wake_.notify_all();

    // The caller claims indices alongside the workers, then waits for the
    // stragglers the workers are still running.
    for (;;) {
        int index;
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            if (next_ >= count_) {
                break;
            }
            index = next_++;
        }
        run_one(task, index);
    }

    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_.wait(lock, [this] { return pending_ == 0; });
        task_ = nullptr;
        error = error_;
        error_ = nullptr;
    }
    // cancel_ stays true until the next job starts: a task that captured
    // the flag pointer must never observe a stale "false" while unwinding.
    if (error != nullptr) {
        std::rethrow_exception(error);
    }
}

void ThreadPool::worker_loop() {
    for (;;) {
        const std::function<void(int)>* task = nullptr;
        int index = -1;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [this] { return stop_ || (task_ != nullptr && next_ < count_); });
            if (stop_) {
                return;
            }
            task = task_;
            index = next_++;
        }
        run_one(*task, index);
    }
}

}  // namespace amsvp::support
