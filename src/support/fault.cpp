#include "support/fault.hpp"

#include <map>
#include <mutex>

namespace amsvp::support::fault {

namespace detail {

std::atomic<int> g_armed_sites{0};

namespace {

struct Site {
    bool armed = false;
    Trigger trigger = Trigger::kOnce;
    int countdown = 0;  ///< kAfterN: matching checks left before the firing one
    int context = kAnyContext;
    int fired = 0;
};

std::mutex g_mutex;
// std::map keeps iterators/references stable and needs no hashing of the
// site string on the (already slow) armed path.
std::map<std::string, Site>& registry() {
    static std::map<std::string, Site> sites;
    return sites;
}

}  // namespace

bool should_fire_slow(const char* site, int context) {
    const std::lock_guard<std::mutex> lock(g_mutex);
    auto& sites = registry();
    const auto it = sites.find(site);
    if (it == sites.end() || !it->second.armed) {
        return false;
    }
    Site& s = it->second;
    if (s.context != kAnyContext && context != s.context) {
        return false;
    }
    switch (s.trigger) {
        case Trigger::kAlways:
            ++s.fired;
            return true;
        case Trigger::kOnce:
            s.armed = false;
            g_armed_sites.fetch_sub(1, std::memory_order_relaxed);
            ++s.fired;
            return true;
        case Trigger::kAfterN:
            if (s.countdown > 0) {
                --s.countdown;
                return false;
            }
            s.armed = false;
            g_armed_sites.fetch_sub(1, std::memory_order_relaxed);
            ++s.fired;
            return true;
    }
    return false;
}

}  // namespace detail

void arm(const std::string& site, Trigger trigger, int after, int context) {
    const std::lock_guard<std::mutex> lock(detail::g_mutex);
    detail::Site& s = detail::registry()[site];
    if (!s.armed) {
        detail::g_armed_sites.fetch_add(1, std::memory_order_relaxed);
    }
    s.armed = true;
    s.trigger = trigger;
    s.countdown = after;
    s.context = context;
}

void disarm(const std::string& site) {
    const std::lock_guard<std::mutex> lock(detail::g_mutex);
    auto& sites = detail::registry();
    const auto it = sites.find(site);
    if (it != sites.end() && it->second.armed) {
        it->second.armed = false;
        detail::g_armed_sites.fetch_sub(1, std::memory_order_relaxed);
    }
}

void reset() {
    const std::lock_guard<std::mutex> lock(detail::g_mutex);
    auto& sites = detail::registry();
    for (auto& [name, site] : sites) {
        if (site.armed) {
            detail::g_armed_sites.fetch_sub(1, std::memory_order_relaxed);
        }
    }
    sites.clear();
}

int fire_count(const std::string& site) {
    const std::lock_guard<std::mutex> lock(detail::g_mutex);
    const auto& sites = detail::registry();
    const auto it = sites.find(site);
    return it == sites.end() ? 0 : it->second.fired;
}

}  // namespace amsvp::support::fault
