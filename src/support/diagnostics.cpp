#include "support/diagnostics.hpp"

#include <utility>

namespace amsvp::support {

std::string_view to_string(Severity severity) {
    switch (severity) {
        case Severity::kNote:
            return "note";
        case Severity::kWarning:
            return "warning";
        case Severity::kError:
            return "error";
    }
    return "unknown";
}

std::string Diagnostic::render() const {
    std::string out{to_string(severity)};
    if (location.valid()) {
        out += " at ";
        out += to_string(location);
    }
    out += ": ";
    out += message;
    return out;
}

void DiagnosticEngine::note(SourceLocation loc, std::string message) {
    add(Severity::kNote, loc, std::move(message));
}

void DiagnosticEngine::warning(SourceLocation loc, std::string message) {
    add(Severity::kWarning, loc, std::move(message));
}

void DiagnosticEngine::error(SourceLocation loc, std::string message) {
    add(Severity::kError, loc, std::move(message));
}

std::string DiagnosticEngine::render_all() const {
    std::string out;
    for (const Diagnostic& diag : diagnostics_) {
        out += diag.render();
        out += '\n';
    }
    return out;
}

void DiagnosticEngine::clear() {
    diagnostics_.clear();
    error_count_ = 0;
}

void DiagnosticEngine::add(Severity severity, SourceLocation loc, std::string message) {
    if (severity == Severity::kError) {
        ++error_count_;
    }
    diagnostics_.push_back(Diagnostic{severity, loc, std::move(message)});
}

}  // namespace amsvp::support
