// A small fixed-size worker pool for data-parallel jobs.
//
// The batch runtime shards wide sweeps into per-thread slot files (each
// lane-chunk shard is an independent BatchCompiledModel over the shared,
// immutable ModelLayout), so all the pool has to provide is "run task(i)
// for i in [0, count) across the workers and wait". Workers are spawned
// once and reused across run() calls — a sweep driver can dispatch many
// jobs without paying thread creation per call. The calling thread
// participates in the job, so a pool constructed with `workers == 1` adds
// zero threads and degenerates to a plain loop.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace amsvp::support {

class ThreadPool {
public:
    /// A pool that runs jobs on `workers` threads total: `workers - 1`
    /// spawned helpers plus the thread calling run().
    explicit ThreadPool(int workers);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Total threads a job runs on (helpers + the caller).
    [[nodiscard]] int workers() const { return static_cast<int>(threads_.size()) + 1; }

    /// Run task(0) .. task(count - 1) across the pool. Indices are claimed
    /// dynamically, each runs exactly once, and the call returns only when
    /// every index has completed. The calling thread participates. Tasks
    /// must not call run() on the same pool (jobs do not nest) and must
    /// not throw — this library reports failure via AMSVP_CHECK/abort, and
    /// an exception escaping a task leaves the job's bookkeeping undrained
    /// (worker-side throws terminate outright).
    void run(int count, const std::function<void(int)>& task);

    /// Hardware concurrency with a floor of 1 (hardware_concurrency() may
    /// legally report 0).
    [[nodiscard]] static int hardware_threads();

private:
    void worker_loop();

    std::mutex mutex_;
    std::condition_variable wake_;  ///< workers: a job arrived / shutdown
    std::condition_variable done_;  ///< run(): all indices completed
    const std::function<void(int)>* task_ = nullptr;
    int count_ = 0;    ///< indices in the current job
    int next_ = 0;     ///< next index to claim
    int pending_ = 0;  ///< indices claimed-or-unclaimed but not yet completed
    bool stop_ = false;
    std::vector<std::thread> threads_;
};

}  // namespace amsvp::support
