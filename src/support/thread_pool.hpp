// A small fixed-size worker pool for data-parallel jobs.
//
// The batch runtime shards wide sweeps into per-thread slot files (each
// lane-chunk shard is an independent BatchCompiledModel over the shared,
// immutable ModelLayout), so all the pool has to provide is "run task(i)
// for i in [0, count) across the workers and wait". Workers are spawned
// once and reused across run() calls — a sweep driver can dispatch many
// jobs without paying thread creation per call. The calling thread
// participates in the job, so a pool constructed with `workers == 1` adds
// zero threads and degenerates to a plain loop.
#pragma once

#include <atomic>
#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace amsvp::support {

class ThreadPool {
public:
    /// A pool that runs jobs on `workers` threads total: `workers - 1`
    /// spawned helpers plus the thread calling run().
    explicit ThreadPool(int workers);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Total threads a job runs on (helpers + the caller).
    [[nodiscard]] int workers() const { return static_cast<int>(threads_.size()) + 1; }

    /// Run task(0) .. task(count - 1) across the pool. Indices are claimed
    /// dynamically and the call returns only when the job is over; the
    /// calling thread participates. Tasks must not call run() on the same
    /// pool (jobs do not nest).
    ///
    /// Failure contract: a task may throw. The first exception (by
    /// completion order) is captured, the job's cancel flag is raised so
    /// unclaimed indices are abandoned and cooperative tasks can bail early
    /// (see cancelled()), already-running tasks drain, and the exception is
    /// rethrown here on the calling thread once every started task has
    /// finished. Later exceptions from the same job are swallowed. On a
    /// clean job every index runs exactly once; after a failure each index
    /// ran at most once. The pool itself stays usable for further jobs.
    void run(int count, const std::function<void(int)>& task);

    /// True while the current job has captured a failure: long-running
    /// tasks may poll this (one relaxed load) and return early — their
    /// results are going to be discarded by the rethrow anyway. Outside a
    /// failing job it reads false.
    [[nodiscard]] bool cancelled() const { return cancel_.load(std::memory_order_relaxed); }

    /// The job's shared cancel flag, for tasks that outlive a reference to
    /// the pool object only through the flag (e.g. a shard loop handed a
    /// `const std::atomic<bool>*`).
    [[nodiscard]] const std::atomic<bool>& cancel_flag() const { return cancel_; }

    /// Hardware concurrency with a floor of 1 (hardware_concurrency() may
    /// legally report 0).
    [[nodiscard]] static int hardware_threads();

private:
    void worker_loop();
    /// Run one claimed index, routing an escaping exception into the job's
    /// first-error slot and cancelling the remaining unclaimed indices.
    void run_one(const std::function<void(int)>& task, int index);

    std::mutex mutex_;
    std::condition_variable wake_;  ///< workers: a job arrived / shutdown
    std::condition_variable done_;  ///< run(): all indices completed
    const std::function<void(int)>* task_ = nullptr;
    int count_ = 0;    ///< indices in the current job
    int next_ = 0;     ///< next index to claim
    int pending_ = 0;  ///< claimed-or-unclaimed indices not yet completed/abandoned
    std::exception_ptr error_;      ///< first task failure of the current job
    std::atomic<bool> cancel_{false};  ///< raised when error_ is set
    bool stop_ = false;
    std::vector<std::thread> threads_;
};

}  // namespace amsvp::support
