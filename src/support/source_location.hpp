// Source positions for diagnostics emitted by the Verilog-AMS frontend and the
// abstraction pipeline.
#pragma once

#include <cstdint>
#include <string>

namespace amsvp::support {

/// A position inside a Verilog-AMS (or assembler) source buffer.
/// Lines and columns are 1-based; a value of 0 means "unknown".
struct SourceLocation {
    std::uint32_t line = 0;
    std::uint32_t column = 0;

    [[nodiscard]] constexpr bool valid() const { return line != 0; }

    friend constexpr bool operator==(const SourceLocation&, const SourceLocation&) = default;
};

/// A half-open range of positions, used to underline offending tokens.
struct SourceRange {
    SourceLocation begin;
    SourceLocation end;

    friend constexpr bool operator==(const SourceRange&, const SourceRange&) = default;
};

/// Render "line:column" (or "?" when unknown).
[[nodiscard]] std::string to_string(const SourceLocation& loc);

}  // namespace amsvp::support
