// Shared step-count rounding for transient drivers.
//
// Every backend converts a duration into a whole number of fixed timesteps
// as `duration / dt`. Truncating that quotient drops the final step whenever
// the division lands a hair below an integer (0.9 / 0.1 =
// 8.999999999999998), so a nominally 9-step run silently becomes 8. This
// helper snaps quotients within a few ulps of an integer up to it and
// truncates otherwise, and is used by every site that needs a step count —
// so all engines agree on how many samples a duration produces.
#pragma once

#include <cmath>
#include <cstddef>
#include <limits>

namespace amsvp::support {

/// Number of whole timesteps of size `dt` in `duration`. Ulp-tolerant: a
/// quotient within 4 ulps below an integer counts as that integer;
/// anything further truncates (1.0 / 0.3 is 3 steps, not 4). Non-positive
/// durations give 0 steps; `dt` must be positive and finite.
[[nodiscard]] inline std::size_t step_count(double duration, double dt) {
    const double raw = duration / dt;
    if (!(raw > 0.0)) {
        return 0;
    }
    // std::round, not nearbyint: the snap must not depend on the caller's
    // current FP rounding mode (fesetround(FE_DOWNWARD) would otherwise
    // floor the quotient and silently reintroduce the truncation bug).
    const double nearest = std::round(raw);
    if (nearest > raw &&
        nearest - raw <= 4.0 * std::numeric_limits<double>::epsilon() * nearest) {
        return static_cast<std::size_t>(nearest);
    }
    return static_cast<std::size_t>(raw);
}

}  // namespace amsvp::support
