// Deterministic fault injection for robustness tests.
//
// Production code is sprinkled with named *fault sites* — e.g. the JIT's
// compiler invocation ("jit.compile"), the worker pool's task dispatch
// ("pool.worker"), the sweep driver's per-lane stimulus write
// ("sweep.lane_nan"). A site is one `fault::should_fire(...)` call; tests
// *arm* a site to make it fire once, always, or after N matching checks,
// and the code under test takes its real recovery path — no mocks, no
// special test-only builds.
//
// Unarmed cost: `should_fire` is an inline check of one relaxed atomic
// counter (`any_armed()`); the registry lookup only happens while at least
// one site is armed anywhere in the process. Hot loops can therefore keep
// their fault sites in production builds.
//
// Known sites (keep this list in sync with the code and README):
//   jit.compile       compiler invocation fails (exit != 0)
//   jit.dlopen        loading the compiled shared object fails
//   jit.dlsym         a required entry point is missing from the .so
//   jit.orc_materialize  the in-process ORC JIT fails to materialize the
//                     step kernels (codegen::OrcJitProgram::compile)
//   pool.worker       a ThreadPool task throws (context = task index)
//   sweep.lane_nan    a sweep lane's input goes NaN (context = global lane)
//   sweep.shard_alloc building a per-worker sweep shard fails
//                     (context = shard index)
//
// Thread safety: arm/disarm/should_fire may be called from any thread; the
// slow path serializes on one mutex. Counting triggers (kOnce, kAfterN)
// fire exactly once process-wide even under concurrent checks.
#pragma once

#include <atomic>
#include <string>

namespace amsvp::support::fault {

/// How an armed site decides to fire.
enum class Trigger {
    kOnce,    ///< the next matching check fires, then the site disarms
    kAlways,  ///< every matching check fires until disarm()
    kAfterN,  ///< the first `after` matching checks pass, the next fires
              ///< once, then the site disarms
};

/// Context wildcard: the armed site matches checks with any context value.
inline constexpr int kAnyContext = -1;

/// Arm `site`. `after` is only meaningful for Trigger::kAfterN. When
/// `context != kAnyContext`, only checks reporting that exact context value
/// match (e.g. one specific sweep lane or pool task index); non-matching
/// checks neither fire nor advance the kAfterN countdown. Re-arming an
/// armed site replaces its trigger and resets its countdown (the fire count
/// is kept).
void arm(const std::string& site, Trigger trigger, int after = 0, int context = kAnyContext);

/// Disarm one site. Its fire count survives for later assertions.
void disarm(const std::string& site);

/// Disarm every site and forget all fire counts.
void reset();

/// How many times `site` has fired since it was first armed (test
/// assertions: "the recovery path really was exercised").
[[nodiscard]] int fire_count(const std::string& site);

namespace detail {
extern std::atomic<int> g_armed_sites;
[[nodiscard]] bool should_fire_slow(const char* site, int context);
}  // namespace detail

/// True while at least one site is armed — a single relaxed load, the
/// production fast path.
[[nodiscard]] inline bool any_armed() {
    return detail::g_armed_sites.load(std::memory_order_relaxed) != 0;
}

/// The fault site check. Unarmed: one relaxed atomic load and a predicted
/// branch. Armed: a mutex-guarded registry lookup deciding per the site's
/// trigger.
[[nodiscard]] inline bool should_fire(const char* site, int context = kAnyContext) {
    return any_armed() && detail::should_fire_slow(site, context);
}

}  // namespace amsvp::support::fault
