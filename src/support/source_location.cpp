#include "support/source_location.hpp"

namespace amsvp::support {

std::string to_string(const SourceLocation& loc) {
    if (!loc.valid()) {
        return "?";
    }
    return std::to_string(loc.line) + ":" + std::to_string(loc.column);
}

}  // namespace amsvp::support
