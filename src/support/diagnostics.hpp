// Diagnostic collection for the frontend and the abstraction pipeline.
//
// Tools in this library never print errors directly: they record diagnostics
// into a DiagnosticEngine owned by the caller, which decides how to render
// them. This keeps the library usable both from CLI tools and from tests that
// assert on the precise set of emitted diagnostics.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "support/source_location.hpp"

namespace amsvp::support {

enum class Severity {
    kNote,
    kWarning,
    kError,
};

[[nodiscard]] std::string_view to_string(Severity severity);

/// One diagnostic message, optionally anchored to a source location.
struct Diagnostic {
    Severity severity = Severity::kError;
    SourceLocation location;
    std::string message;

    /// Render as "error at 3:14: something" / "warning: something".
    [[nodiscard]] std::string render() const;
};

/// Accumulates diagnostics produced while processing one source buffer.
class DiagnosticEngine {
public:
    void note(SourceLocation loc, std::string message);
    void warning(SourceLocation loc, std::string message);
    void error(SourceLocation loc, std::string message);

    [[nodiscard]] bool has_errors() const { return error_count_ > 0; }
    [[nodiscard]] std::size_t error_count() const { return error_count_; }
    [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }

    /// All diagnostics rendered one per line; empty string when clean.
    [[nodiscard]] std::string render_all() const;

    void clear();

private:
    void add(Severity severity, SourceLocation loc, std::string message);

    std::vector<Diagnostic> diagnostics_;
    std::size_t error_count_ = 0;
};

}  // namespace amsvp::support
