#include "support/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstring>

namespace amsvp::support {

namespace {

bool is_space(char c) {
    return std::isspace(static_cast<unsigned char>(c)) != 0;
}

}  // namespace

std::string_view trim(std::string_view text) {
    std::size_t begin = 0;
    while (begin < text.size() && is_space(text[begin])) {
        ++begin;
    }
    std::size_t end = text.size();
    while (end > begin && is_space(text[end - 1])) {
        --end;
    }
    return text.substr(begin, end - begin);
}

std::vector<std::string_view> split(std::string_view text, char separator) {
    std::vector<std::string_view> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= text.size(); ++i) {
        if (i == text.size() || text[i] == separator) {
            out.push_back(text.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::vector<std::string_view> split_whitespace(std::string_view text) {
    std::vector<std::string_view> out;
    std::size_t i = 0;
    while (i < text.size()) {
        while (i < text.size() && is_space(text[i])) {
            ++i;
        }
        std::size_t start = i;
        while (i < text.size() && !is_space(text[i])) {
            ++i;
        }
        if (i > start) {
            out.push_back(text.substr(start, i - start));
        }
    }
    return out;
}

std::string join(const std::vector<std::string>& pieces, std::string_view separator) {
    std::string out;
    for (std::size_t i = 0; i < pieces.size(); ++i) {
        if (i != 0) {
            out += separator;
        }
        out += pieces[i];
    }
    return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
    return text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
    return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view text) {
    std::string out(text);
    for (char& c : out) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    return out;
}

std::string format_double(double value) {
    // Among all %g renderings that parse back to the same value, pick the
    // shortest (earliest precision wins ties); this keeps generated code
    // readable: 100 instead of 1e+02, 5e-08 instead of 0.00000005.
    std::string best;
    for (int precision = 1; precision <= 17; ++precision) {
        char buffer[64];
        std::snprintf(buffer, sizeof buffer, "%.*g", precision, value);
        double parsed = 0.0;
        std::sscanf(buffer, "%lf", &parsed);
        if (parsed == value && (best.empty() || std::strlen(buffer) < best.size())) {
            best = buffer;
        }
    }
    if (!best.empty()) {
        return best;
    }
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.17g", value);
    return buffer;
}

std::string indent(std::string_view text, int spaces) {
    const std::string pad(static_cast<std::size_t>(spaces), ' ');
    std::string out;
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t nl = text.find('\n', start);
        std::string_view line =
            text.substr(start, nl == std::string_view::npos ? text.size() - start : nl - start);
        if (!line.empty()) {
            out += pad;
            out += line;
        }
        if (nl == std::string_view::npos) {
            break;
        }
        out += '\n';
        start = nl + 1;
    }
    return out;
}

}  // namespace amsvp::support
