#include "cosim/coupler.hpp"

#include <cstring>

#include "support/check.hpp"

namespace amsvp::cosim {

CosimCoupler::CosimCoupler(de::Simulator& sim, const netlist::Circuit& circuit,
                           const spice::SpiceOptions& options,
                           std::map<std::string, numeric::SourceFunction> stimuli,
                           std::string observed_pos, std::string observed_neg)
    : sim_(sim),
      pos_(std::move(observed_pos)),
      neg_(std::move(observed_neg)),
      trace_(options.timestep, options.timestep),
      period_(de::from_seconds(options.timestep)) {
    std::string error;
    auto engine = spice::SpiceEngine::create(circuit, options, &error);
    if (!engine) {
        std::fprintf(stderr, "cosim: %s\n", error.c_str());
    }
    AMSVP_CHECK(engine.has_value(), "co-simulation engine creation failed");
    engine_ = std::make_unique<spice::SpiceEngine>(std::move(*engine));

    for (const std::string& name : engine_->input_names()) {
        const auto it = stimuli.find(name);
        AMSVP_CHECK(it != stimuli.end(), "missing stimulus for co-simulated input");
        sources_.push_back(it->second);
    }
    inputs_scratch_.assign(sources_.size(), 0.0);
    output_ = std::make_unique<de::Signal<double>>(sim, "cosim_out", 0.0);
    sim_.schedule_periodic(sim_.now() + period_, period_, [this] { synchronize(); });
}

void CosimCoupler::marshal(const std::vector<double>& values, Message& msg) {
    msg.sequence = ++sequence_;
    msg.payload.resize(values.size() * sizeof(double));
    std::memcpy(msg.payload.data(), values.data(), msg.payload.size());
    stats_.bytes_marshalled += msg.payload.size() + sizeof msg.sequence;
}

void CosimCoupler::unmarshal(const Message& msg, std::vector<double>& values) {
    values.resize(msg.payload.size() / sizeof(double));
    std::memcpy(values.data(), msg.payload.data(), msg.payload.size());
    stats_.bytes_marshalled += msg.payload.size() + sizeof msg.sequence;
}

void CosimCoupler::synchronize() {
    const double t = de::to_seconds(sim_.now());
    ++stats_.sync_points;

    // Digital -> analog: sample the stimuli and marshal them across the
    // simulator boundary. The scratch vectors are members so the per-sync
    // marshalling copies bytes (the modelled cost) without allocating.
    for (std::size_t i = 0; i < sources_.size(); ++i) {
        inputs_scratch_[i] = sources_[i](t);
    }
    marshal(inputs_scratch_, to_analog_);

    // "Context switch" to the analog solver: it unpacks the message,
    // advances its own time by one step, and packs the observations.
    unmarshal(to_analog_, analog_inputs_scratch_);
    const bool ok = engine_->step(analog_inputs_scratch_, t);
    AMSVP_CHECK(ok, "analog solver failed to converge during co-simulation");
    observations_scratch_.assign(1, engine_->voltage_between(pos_, neg_));
    marshal(observations_scratch_, from_analog_);

    // Analog -> digital: handshake check, then commit to kernel channels.
    unmarshal(from_analog_, results_scratch_);
    AMSVP_CHECK(from_analog_.sequence == sequence_, "co-simulation handshake out of order");
    ++stats_.handshakes;

    output_->write(results_scratch_.front());
    trace_.append(results_scratch_.front());
}

}  // namespace amsvp::cosim
