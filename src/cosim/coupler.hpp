// Co-simulation coupler — the Questa-ADMS stand-in.
//
// Emulates the structure (and therefore the cost) of coupling a digital
// event-driven simulator with an external analog solver, the configuration
// the paper's Table I/III "Verilog-AMS" rows measure:
//  * the analog engine keeps its own local time and internal state,
//  * every analog timestep requires a synchronization point in the digital
//    kernel: inputs are marshalled into a message buffer, control transfers
//    to the analog solver, results are marshalled back and committed to
//    digital channels,
//  * a handshake with sequence numbers guards the exchange, as a real
//    inter-simulator backplane does.
//
// Removing exactly this per-step synchronization is the first speed-up the
// paper's conversion flow claims; the coupler makes that cost measurable
// instead of assumed.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "de/kernel.hpp"
#include "de/signal.hpp"
#include "numeric/sources.hpp"
#include "numeric/waveform.hpp"
#include "spice/engine.hpp"

namespace amsvp::cosim {

struct CosimStats {
    std::uint64_t sync_points = 0;
    std::uint64_t bytes_marshalled = 0;
    std::uint64_t handshakes = 0;
};

class CosimCoupler {
public:
    /// Couple `circuit` (simulated by the conservative engine) to `sim`.
    /// Stimuli provide the analog input values; the voltage between
    /// `observed_pos`/`observed_neg` is published to a digital signal at
    /// every synchronization point.
    CosimCoupler(de::Simulator& sim, const netlist::Circuit& circuit,
                 const spice::SpiceOptions& options,
                 std::map<std::string, numeric::SourceFunction> stimuli,
                 std::string observed_pos, std::string observed_neg);

    [[nodiscard]] de::Signal<double>& output() { return *output_; }
    [[nodiscard]] const numeric::Waveform& trace() const { return trace_; }
    [[nodiscard]] const CosimStats& stats() const { return stats_; }
    [[nodiscard]] const spice::SpiceEngine& engine() const { return *engine_; }

private:
    void synchronize();

    /// Marshalled message exchanged with the "external" solver.
    struct Message {
        std::uint64_t sequence = 0;
        std::vector<std::byte> payload;
    };
    void marshal(const std::vector<double>& values, Message& msg);
    void unmarshal(const Message& msg, std::vector<double>& values);

    de::Simulator& sim_;
    std::unique_ptr<spice::SpiceEngine> engine_;
    std::vector<numeric::SourceFunction> sources_;
    std::string pos_;
    std::string neg_;
    std::unique_ptr<de::Signal<double>> output_;
    numeric::Waveform trace_;
    de::Time period_;
    std::uint64_t sequence_ = 0;
    Message to_analog_;
    Message from_analog_;
    /// Reused per-sync scratch: marshalling still copies every byte (that is
    /// the cost being modelled) but does not allocate in steady state.
    std::vector<double> inputs_scratch_;
    std::vector<double> analog_inputs_scratch_;
    std::vector<double> observations_scratch_;
    std::vector<double> results_scratch_;
    CosimStats stats_;
};

}  // namespace amsvp::cosim
