#include "vp/platform.hpp"

#include <chrono>
#include <memory>

#include "backends/de_modules.hpp"
#include "backends/tdf_modules.hpp"
#include "cosim/coupler.hpp"
#include "de/clock.hpp"
#include "de/signal.hpp"
#include "eln/engine.hpp"
#include "runtime/compiled_model.hpp"
#include "support/check.hpp"
#include "support/diagnostics.hpp"
#include "tdf/tdf.hpp"
#include "vp/adc.hpp"
#include "vp/assembler.hpp"
#include "vp/cpu.hpp"
#include "vp/timer.hpp"
#include "vp/uart.hpp"

namespace amsvp::vp {

using Clk = std::chrono::steady_clock;

std::string_view to_string(AnalogIntegration integration) {
    switch (integration) {
        case AnalogIntegration::kVamsCosim:
            return "Verilog-AMS cosim";
        case AnalogIntegration::kEln:
            return "SC-AMS/ELN";
        case AnalogIntegration::kTdf:
            return "SC-AMS/TDF";
        case AnalogIntegration::kDe:
            return "SC-DE";
        case AnalogIntegration::kCpp:
            return "C++";
    }
    return "unknown";
}

namespace {

double elapsed(Clk::time_point start) {
    return std::chrono::duration<double>(Clk::now() - start).count();
}

AssembledProgram assemble_firmware(const PlatformConfig& config) {
    support::DiagnosticEngine diags;
    const std::string source =
        config.firmware.empty() ? firmware_threshold_monitor() : config.firmware;
    auto program = assemble(source, kRamBase, diags);
    if (!program) {
        std::fprintf(stderr, "%s", diags.render_all().c_str());
    }
    AMSVP_CHECK(program.has_value(), "firmware failed to assemble");
    return std::move(*program);
}

/// Digital skeleton shared by every integration: RAM + APB(UART, ADC) + CPU.
struct DigitalPlatform {
    DigitalPlatform(const PlatformConfig& config, const AssembledProgram& program,
                    std::function<double()> probe)
        : ram(kRamSize), adc(std::move(probe), config.adc_v_min, config.adc_v_max) {
        ram.load(0, program.words);
        apb.attach("uart", kUartBase - kApbBase, 0x1000, uart);
        apb.attach("adc", kAdcBase - kApbBase, 0x1000, adc);
        bus.map_region("ram", kRamBase, kRamSize, ram);
        bus.map_region("apb", kApbBase, 0x10000, apb);
        cpu = std::make_unique<Cpu>(bus, kRamBase);
    }

    void collect(PlatformResult& result) const {
        result.instructions = cpu->stats().instructions;
        result.uart_output = uart.transmitted();
        result.adc_conversions = adc.conversions();
        result.bus_reads = bus.stats().reads;
        result.bus_writes = bus.stats().writes;
        result.apb_transfers = apb.transfers();
    }

    Ram ram;
    Uart uart;
    Adc adc;
    ApbBridge apb;
    SystemBus bus;
    std::unique_ptr<Cpu> cpu;
};

/// CPU wrapper for the DE kernel. kRtl fidelity mirrors per-instruction bus
/// activity onto kernel signals (address/data), generating the delta-cycle
/// traffic an RTL description would; kTlm executes silently.
class CpuDeModule {
public:
    CpuDeModule(de::Simulator& sim, de::Clock& clock, Cpu& cpu, DigitalFidelity fidelity)
        : sim_(sim),
          cpu_(cpu),
          fidelity_(fidelity),
          addr_signal_(sim, "cpu_addr", 0),
          data_strobe_(sim, "cpu_dstrobe", 0) {
        const de::ProcessId pid = sim.add_process("cpu", [this] { on_posedge(); });
        clock.pos_sensitive(pid);
    }

private:
    void on_posedge() {
        if (cpu_.halted()) {
            return;
        }
        cpu_.step();
        if (fidelity_ == DigitalFidelity::kRtl) {
            // RTL-style visibility: the instruction bus toggles every cycle,
            // the data strobe counts data-phase transactions.
            addr_signal_.write(cpu_.last_fetch_address());
            if (cpu_.last_was_memory_access()) {
                data_strobe_.write(data_strobe_.read() + 1);
            }
        }
    }

    de::Simulator& sim_;
    Cpu& cpu_;
    DigitalFidelity fidelity_;
    de::Signal<std::uint32_t> addr_signal_;
    de::Signal<std::uint32_t> data_strobe_;
};

std::unique_ptr<runtime::ModelExecutor> make_executor(const PlatformConfig& config) {
    AMSVP_CHECK(config.model != nullptr, "integration needs the abstracted model");
    if (config.executor_factory) {
        return config.executor_factory(*config.model);
    }
    return std::make_unique<runtime::CompiledModel>(*config.model);
}

PlatformResult run_pure_cpp(const PlatformConfig& config, const AssembledProgram& program,
                            double duration) {
    std::unique_ptr<runtime::ModelExecutor> executor = make_executor(config);
    runtime::ModelExecutor& compiled = *executor;

    std::vector<const numeric::SourceFunction*> sources;
    for (const expr::Symbol& in : config.model->inputs) {
        const auto it = config.stimuli.find(in.name);
        AMSVP_CHECK(it != config.stimuli.end(), "missing stimulus");
        sources.push_back(&it->second);
    }

    DigitalPlatform digital(config, program, [&compiled] { return compiled.output(0); });

    const double cpu_dt = de::to_seconds(config.cpu_period);
    const auto ratio = static_cast<std::uint64_t>(config.analog_timestep / cpu_dt + 0.5);
    AMSVP_CHECK(ratio >= 1, "analog timestep below CPU period");
    const auto ticks = static_cast<std::uint64_t>(duration / cpu_dt);

    PlatformResult result;
    const auto start = Clk::now();
    for (std::uint64_t k = 1; k <= ticks; ++k) {
        if (k % ratio == 0) {
            const double t = static_cast<double>(k) * cpu_dt;
            for (std::size_t i = 0; i < sources.size(); ++i) {
                compiled.set_input(i, (*sources[i])(t));
            }
            compiled.step(t);
        }
        digital.cpu->step();
        if (digital.cpu->halted()) {
            break;
        }
    }
    result.wall_seconds = elapsed(start);
    digital.collect(result);
    return result;
}

PlatformResult run_kernel_platform(const PlatformConfig& config,
                                   const AssembledProgram& program, double duration) {
    de::Simulator sim;

    // Analog side first (the ADC probe closes over it).
    std::unique_ptr<cosim::CosimCoupler> coupler;
    std::unique_ptr<eln::ElnDeModule> eln_module;
    std::unique_ptr<backends::TdfModel> tdf_model;
    std::unique_ptr<backends::TdfSink> tdf_sink;
    std::vector<std::unique_ptr<backends::TdfSource>> tdf_sources;
    std::unique_ptr<tdf::TdfCluster> tdf_cluster;
    std::unique_ptr<de::Clock> analog_clock;
    std::vector<std::unique_ptr<backends::DeSource>> de_sources;
    std::unique_ptr<backends::DeModel> de_model;

    std::function<double()> probe;
    switch (config.integration) {
        case AnalogIntegration::kVamsCosim: {
            AMSVP_CHECK(config.circuit != nullptr, "cosim integration needs the circuit");
            spice::SpiceOptions options = config.spice;
            options.timestep = config.analog_timestep;
            coupler = std::make_unique<cosim::CosimCoupler>(sim, *config.circuit, options,
                                                            config.stimuli,
                                                            config.observed_pos,
                                                            config.observed_neg);
            probe = [&c = *coupler] { return c.output().read(); };
            break;
        }
        case AnalogIntegration::kEln: {
            AMSVP_CHECK(config.circuit != nullptr, "ELN integration needs the circuit");
            eln_module = std::make_unique<eln::ElnDeModule>(
                sim, *config.circuit, config.analog_timestep, config.stimuli,
                config.observed_pos, config.observed_neg);
            probe = [&m = *eln_module] { return m.output().read(); };
            break;
        }
        case AnalogIntegration::kTdf: {
            AMSVP_CHECK(config.model != nullptr, "TDF integration needs the model");
            tdf_cluster = std::make_unique<tdf::TdfCluster>();
            tdf_model = std::make_unique<backends::TdfModel>("dut", *config.model,
                                                             make_executor(config));
            tdf_sink = std::make_unique<backends::TdfSink>("sink");
            tdf_cluster->add(*tdf_model);
            tdf_cluster->add(*tdf_sink);
            for (std::size_t i = 0; i < config.model->inputs.size(); ++i) {
                const auto it = config.stimuli.find(config.model->inputs[i].name);
                AMSVP_CHECK(it != config.stimuli.end(), "missing stimulus");
                tdf_sources.push_back(std::make_unique<backends::TdfSource>(
                    "src" + std::to_string(i), it->second));
                tdf_cluster->add(*tdf_sources.back());
                tdf_cluster->connect(tdf_sources.back()->out, tdf_model->input(i));
            }
            tdf_cluster->connect(tdf_model->output(0), tdf_sink->in);
            tdf_cluster->set_timestep(*tdf_model, config.model->timestep);
            std::string error;
            const bool ok = tdf_cluster->elaborate(&error);
            AMSVP_CHECK(ok, "TDF elaboration failed");
            tdf_cluster->attach(sim);
            probe = [&s = *tdf_sink] { return s.last(); };
            break;
        }
        case AnalogIntegration::kDe: {
            AMSVP_CHECK(config.model != nullptr, "DE integration needs the model");
            analog_clock = std::make_unique<de::Clock>(
                sim, "aclk", de::from_seconds(config.model->timestep));
            std::vector<de::Signal<double>*> inputs;
            for (std::size_t i = 0; i < config.model->inputs.size(); ++i) {
                const auto it = config.stimuli.find(config.model->inputs[i].name);
                AMSVP_CHECK(it != config.stimuli.end(), "missing stimulus");
                de_sources.push_back(std::make_unique<backends::DeSource>(
                    sim, *analog_clock, "src" + std::to_string(i), it->second));
                inputs.push_back(&de_sources.back()->out());
            }
            de_model = std::make_unique<backends::DeModel>(sim, *analog_clock, "dut",
                                                           *config.model, std::move(inputs),
                                                           make_executor(config));
            probe = [&m = *de_model] { return m.output(0).read(); };
            break;
        }
        case AnalogIntegration::kCpp:
            AMSVP_CHECK(false, "pure-C++ platform handled separately");
            break;
    }

    DigitalPlatform digital(config, program, std::move(probe));
    // Kernel platforms expose a periodic timer peripheral; firmware enables
    // it by writing a period + the enable bit (the default firmware leaves
    // it off, so the memory map is the only difference to the pure-C++ run).
    Timer timer(sim);
    digital.apb.attach("timer", kTimerBase - kApbBase, 0x1000, timer);
    de::Clock cpu_clock(sim, "clk", config.cpu_period);
    CpuDeModule cpu_module(sim, cpu_clock, *digital.cpu, config.fidelity);

    PlatformResult result;
    const auto start = Clk::now();
    sim.run_until(de::from_seconds(duration));
    result.wall_seconds = elapsed(start);
    result.kernel = sim.stats();
    result.timer_ticks = timer.ticks();
    digital.collect(result);
    return result;
}

}  // namespace

PlatformResult run_platform(const PlatformConfig& config, double duration) {
    const AssembledProgram program = assemble_firmware(config);
    if (config.integration == AnalogIntegration::kCpp) {
        return run_pure_cpp(config, program, duration);
    }
    return run_kernel_platform(config, program, duration);
}

}  // namespace amsvp::vp
