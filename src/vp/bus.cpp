#include "vp/bus.hpp"

#include <cstdio>

#include "support/check.hpp"

namespace amsvp::vp {

void SystemBus::map_region(std::string name, std::uint32_t base, std::uint32_t size,
                           BusTarget& target) {
    AMSVP_CHECK(size > 0, "empty bus region");
    for (const Region& r : regions_) {
        const bool overlap = base < r.base + r.size && r.base < base + size;
        AMSVP_CHECK(!overlap, "overlapping bus regions");
    }
    regions_.push_back(Region{std::move(name), base, size, &target});
}

SystemBus::Region* SystemBus::decode(std::uint32_t address) {
    for (Region& r : regions_) {
        if (address >= r.base && address < r.base + r.size) {
            return &r;
        }
    }
    return nullptr;
}

std::uint32_t SystemBus::read32(std::uint32_t address) {
    ++stats_.reads;
    Region* r = decode(address);
    if (r == nullptr) {
        std::fprintf(stderr, "bus: read from unmapped address 0x%08x\n", address);
        AMSVP_CHECK(false, "unmapped bus read");
    }
    return r->target->read32(address - r->base);
}

void SystemBus::write32(std::uint32_t address, std::uint32_t value) {
    ++stats_.writes;
    Region* r = decode(address);
    if (r == nullptr) {
        std::fprintf(stderr, "bus: write to unmapped address 0x%08x\n", address);
        AMSVP_CHECK(false, "unmapped bus write");
    }
    r->target->write32(address - r->base, value);
}

std::uint8_t SystemBus::read8(std::uint32_t address) {
    const std::uint32_t word = read32(address & ~3u);
    const std::uint32_t lane = address & 3u;
    return static_cast<std::uint8_t>(word >> (8 * lane));
}

void SystemBus::write8(std::uint32_t address, std::uint8_t value) {
    const std::uint32_t aligned = address & ~3u;
    const std::uint32_t lane = address & 3u;
    std::uint32_t word = read32(aligned);
    word &= ~(0xFFu << (8 * lane));
    word |= static_cast<std::uint32_t>(value) << (8 * lane);
    write32(aligned, word);
}

std::uint32_t Ram::read32(std::uint32_t offset) {
    AMSVP_CHECK(offset + 4 <= bytes_.size(), "RAM read out of range");
    return static_cast<std::uint32_t>(bytes_[offset]) |
           (static_cast<std::uint32_t>(bytes_[offset + 1]) << 8) |
           (static_cast<std::uint32_t>(bytes_[offset + 2]) << 16) |
           (static_cast<std::uint32_t>(bytes_[offset + 3]) << 24);
}

void Ram::write32(std::uint32_t offset, std::uint32_t value) {
    AMSVP_CHECK(offset + 4 <= bytes_.size(), "RAM write out of range");
    bytes_[offset] = static_cast<std::uint8_t>(value);
    bytes_[offset + 1] = static_cast<std::uint8_t>(value >> 8);
    bytes_[offset + 2] = static_cast<std::uint8_t>(value >> 16);
    bytes_[offset + 3] = static_cast<std::uint8_t>(value >> 24);
}

void Ram::load(std::uint32_t offset, const std::vector<std::uint32_t>& words) {
    for (std::size_t i = 0; i < words.size(); ++i) {
        write32(offset + static_cast<std::uint32_t>(4 * i), words[i]);
    }
}

void ApbBridge::attach(std::string name, std::uint32_t base, std::uint32_t size,
                       BusTarget& peripheral) {
    for (const Slot& s : slots_) {
        const bool overlap = base < s.base + s.size && s.base < base + size;
        AMSVP_CHECK(!overlap, "overlapping APB slots");
    }
    slots_.push_back(Slot{std::move(name), base, size, &peripheral});
}

ApbBridge::Slot* ApbBridge::decode(std::uint32_t offset) {
    for (Slot& s : slots_) {
        if (offset >= s.base && offset < s.base + s.size) {
            return &s;
        }
    }
    return nullptr;
}

std::uint32_t ApbBridge::read32(std::uint32_t offset) {
    Slot* s = decode(offset);
    AMSVP_CHECK(s != nullptr, "APB read decodes to no peripheral");
    ++transfers_;  // setup phase + access phase
    return s->peripheral->read32(offset - s->base);
}

void ApbBridge::write32(std::uint32_t offset, std::uint32_t value) {
    Slot* s = decode(offset);
    AMSVP_CHECK(s != nullptr, "APB write decodes to no peripheral");
    ++transfers_;
    s->peripheral->write32(offset - s->base, value);
}

}  // namespace amsvp::vp
