#include "vp/timer.hpp"

namespace amsvp::vp {

Timer::Timer(de::Simulator& sim, std::string name) : sim_(sim), tick_(sim, std::move(name)) {}

std::uint32_t Timer::read32(std::uint32_t offset) {
    switch (offset) {
        case kCtrl:
            return enabled_ ? 0x1 : 0x0;
        case kPeriodNs:
            return period_ns_;
        case kStatus:
            return pending_ ? 0x1 : 0x0;
        case kCount:
            return static_cast<std::uint32_t>(ticks_);
        default:
            return 0;
    }
}

void Timer::write32(std::uint32_t offset, std::uint32_t value) {
    switch (offset) {
        case kCtrl:
            if ((value & 0x1) != 0) {
                // Idempotent while running: firmware poll loops may rewrite
                // CTRL=1 every iteration. Disable first to latch a new
                // period.
                if (!enabled_) {
                    enable();
                }
            } else {
                disable();
            }
            break;
        case kPeriodNs:
            period_ns_ = value;  // latched on the next enable
            break;
        case kStatus:
            pending_ = false;
            break;
        default:
            break;
    }
}

void Timer::enable() {
    disable();
    if (period_ns_ == 0) {
        return;  // a zero period would flood the kernel; stay disabled
    }
    const de::Time period = static_cast<de::Time>(period_ns_) * de::kNanosecond;
    enabled_ = true;
    ticks_ = 0;
    periodic_ = sim_.schedule_periodic(sim_.now() + period, period, [this] { tick(); });
}

void Timer::disable() {
    if (periodic_ >= 0) {
        sim_.cancel_periodic(periodic_);
        periodic_ = -1;
    }
    enabled_ = false;
}

void Timer::tick() {
    ++ticks_;
    pending_ = true;
    tick_.notify();
}

}  // namespace amsvp::vp
