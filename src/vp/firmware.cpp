#include "vp/firmware.hpp"

namespace amsvp::vp {

std::string firmware_threshold_monitor() {
    return R"(# Smart-system application: poll the ADC watching the analog filter
# output, smooth with a 4-sample moving average, threshold at mid-scale,
# report state changes on the UART ('1' = above threshold, '0' = below).
        li   $t0, 0x10001000      # ADC base
        li   $t1, 0x10000000      # UART base
        li   $s0, 2048            # threshold (mid-scale of the 12-bit range)
        li   $s1, 2               # previous state: invalid -> first compare reports
        li   $s3, 0               # moving-average accumulator
loop:   li   $t2, 1
        sw   $t2, 4($t0)          # ADC CTRL: start conversion
wait:   lw   $t3, 8($t0)          # ADC STATUS
        beq  $t3, $zero, wait     # poll until done
        lw   $t4, 0($t0)          # ADC DATA
        # acc = acc - acc/4 + sample/4   (4-tap exponential moving average)
        srl  $t5, $t4, 2
        srl  $t6, $s3, 2
        subu $s3, $s3, $t6
        addu $s3, $s3, $t5
        slt  $t7, $s3, $s0        # t7 = (avg < threshold)
        beq  $t7, $s1, loop       # state unchanged: next sample
        move $s1, $t7
        li   $t8, 0x31            # '1' (above threshold)
        beq  $t7, $zero, send
        li   $t8, 0x30            # '0' (below threshold)
send:
txwait: lw   $t9, 4($t1)          # UART STATUS
        andi $t9, $t9, 1
        beq  $t9, $zero, txwait   # wait for tx ready
        sw   $t8, 0($t1)          # UART TXDATA
        j    loop
)";
}

std::string firmware_selftest() {
    return R"(# Self-test: ALU + memory + UART.
        li   $t0, 0               # checksum
        li   $t1, 1
        li   $t2, 10
sumlp:  addu $t0, $t0, $t1        # sum 1..10 = 55
        addiu $t1, $t1, 1
        slt  $t3, $t2, $t1
        beq  $t3, $zero, sumlp
        # store/load round trip
        li   $t4, 0x8000          # scratch address in RAM
        sw   $t0, 0($t4)
        lw   $t5, 0($t4)
        li   $t6, 55
        bne  $t5, $t6, fail
        # shifted pattern check: (55 << 4) ^ 0x375 = 0x370 ^ 0x375 = 0x5
        sll  $t7, $t5, 4
        xori $t7, $t7, 0x375
        li   $t8, 0x5
        bne  $t7, $t8, fail
        li   $a0, 0x4F            # 'O'
        jal  putc
        li   $a0, 0x4B            # 'K'
        jal  putc
        halt
fail:   li   $a0, 0x4E            # 'N'
        jal  putc
        li   $a0, 0x4F            # 'O'
        jal  putc
        halt
putc:   li   $t9, 0x10000000      # UART base
pwait:  lw   $at, 4($t9)
        andi $at, $at, 1
        beq  $at, $zero, pwait
        sw   $a0, 0($t9)
        jr   $ra
)";
}

}  // namespace amsvp::vp
