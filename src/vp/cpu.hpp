// MIPS-I-subset instruction-set simulator: the digital core of the virtual
// platform ("a MIPS-based CPU executing assembly instructions contained in
// the memory", Section V-B).
//
// Supported instructions (no branch delay slots — the assembler in this
// repository never schedules them):
//   R-type: sll srl sra jr addu subu and or xor nor slt sltu break
//   I-type: beq bne addi addiu slti sltiu andi ori xori lui lw sw lbu sb
//   J-type: j jal
#pragma once

#include <array>
#include <cstdint>

#include "vp/bus.hpp"

namespace amsvp::vp {

struct CpuStats {
    std::uint64_t instructions = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t branches_taken = 0;
};

class Cpu {
public:
    explicit Cpu(SystemBus& bus, std::uint32_t reset_pc = 0) : bus_(bus), pc_(reset_pc) {}

    /// Execute one instruction. No-op when halted.
    void step();

    [[nodiscard]] bool halted() const { return halted_; }
    [[nodiscard]] std::uint32_t pc() const { return pc_; }
    [[nodiscard]] std::uint32_t reg(int index) const {
        return regs_[static_cast<std::size_t>(index)];
    }
    void set_reg(int index, std::uint32_t value) {
        if (index != 0) {
            regs_[static_cast<std::size_t>(index)] = value;
        }
    }
    void reset(std::uint32_t pc);

    [[nodiscard]] const CpuStats& stats() const { return stats_; }

    /// Set by the last executed instruction: true when it touched the bus
    /// beyond the fetch (used by the RTL-fidelity wrapper to mirror data-bus
    /// activity onto kernel signals).
    [[nodiscard]] bool last_was_memory_access() const { return last_memory_access_; }
    [[nodiscard]] std::uint32_t last_fetch_address() const { return last_fetch_address_; }

private:
    void execute(std::uint32_t instruction);

    SystemBus& bus_;
    std::array<std::uint32_t, 32> regs_{};
    std::uint32_t pc_ = 0;
    bool halted_ = false;
    CpuStats stats_;
    bool last_memory_access_ = false;
    std::uint32_t last_fetch_address_ = 0;
};

}  // namespace amsvp::vp
