// UART peripheral of the virtual platform. The software side matches a
// classic memory-mapped UART: poll STATUS for tx-ready, write bytes to
// TXDATA. Transmitted bytes are captured into a log the testbench reads.
#pragma once

#include <cstdint>
#include <string>

#include "vp/bus.hpp"

namespace amsvp::vp {

class Uart final : public BusTarget {
public:
    static constexpr std::uint32_t kTxData = 0x0;   ///< write: transmit byte
    static constexpr std::uint32_t kStatus = 0x4;   ///< read: bit0 tx ready, bit1 rx avail
    static constexpr std::uint32_t kRxData = 0x8;   ///< read: received byte

    [[nodiscard]] std::uint32_t read32(std::uint32_t offset) override;
    void write32(std::uint32_t offset, std::uint32_t value) override;

    /// Host-side injection of received data.
    void receive(std::string_view data);

    [[nodiscard]] const std::string& transmitted() const { return tx_log_; }
    [[nodiscard]] std::uint64_t tx_count() const { return tx_count_; }

private:
    std::string tx_log_;
    std::string rx_fifo_;
    std::uint64_t tx_count_ = 0;
};

}  // namespace amsvp::vp
