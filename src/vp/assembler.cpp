#include "vp/assembler.hpp"

#include <cstdlib>
#include <map>
#include <string>

#include "support/strings.hpp"

namespace amsvp::vp {

namespace {

using support::SourceLocation;

const std::map<std::string, int>& register_names() {
    static const std::map<std::string, int> names = {
        {"zero", 0}, {"at", 1},  {"v0", 2},  {"v1", 3},  {"a0", 4},  {"a1", 5},
        {"a2", 6},   {"a3", 7},  {"t0", 8},  {"t1", 9},  {"t2", 10}, {"t3", 11},
        {"t4", 12},  {"t5", 13}, {"t6", 14}, {"t7", 15}, {"s0", 16}, {"s1", 17},
        {"s2", 18},  {"s3", 19}, {"s4", 20}, {"s5", 21}, {"s6", 22}, {"s7", 23},
        {"t8", 24},  {"t9", 25}, {"k0", 26}, {"k1", 27}, {"gp", 28}, {"sp", 29},
        {"fp", 30},  {"ra", 31},
    };
    return names;
}

struct Statement {
    std::string mnemonic;
    std::vector<std::string> operands;
    SourceLocation location;
    std::uint32_t address = 0;
};

/// Words a statement occupies (li/la always expand to two instructions).
std::uint32_t statement_words(const Statement& s) {
    if (s.mnemonic == "li" || s.mnemonic == "la") {
        return 2;
    }
    return 1;
}

class Encoder {
public:
    Encoder(const std::map<std::string, std::uint32_t>& labels,
            support::DiagnosticEngine& diagnostics)
        : labels_(labels), diagnostics_(diagnostics) {}

    void encode(const Statement& s, std::vector<std::uint32_t>& out) {
        const std::string& m = s.mnemonic;
        loc_ = s.location;
        address_ = s.address;

        if (m == ".word") {
            if (!expect_operands(s, 1)) {
                out.push_back(0);
                return;
            }
            out.push_back(static_cast<std::uint32_t>(value(s.operands[0])));
            return;
        }
        if (m == "nop") {
            out.push_back(0);
            return;
        }
        if (m == "halt") {
            out.push_back(0x0000000D);  // break
            return;
        }
        if (m == "li" || m == "la") {
            if (!expect_operands(s, 2)) {
                out.push_back(0);
                return;
            }
            const int rt = reg(s.operands[0]);
            const auto v = static_cast<std::uint32_t>(value(s.operands[1]));
            out.push_back(encode_i(0x0f, 0, rt, v >> 16));          // lui rt, hi
            out.push_back(encode_i(0x0d, rt, rt, v & 0xFFFF));      // ori rt, rt, lo
            return;
        }
        if (m == "move") {
            if (!expect_operands(s, 2)) {
                out.push_back(0);
                return;
            }
            out.push_back(encode_r(reg(s.operands[1]), 0, reg(s.operands[0]), 0, 0x21));
            return;
        }
        if (m == "b") {
            if (!expect_operands(s, 1)) {
                out.push_back(0);
                return;
            }
            out.push_back(encode_i(0x04, 0, 0, branch_offset(s.operands[0])));
            return;
        }

        static const std::map<std::string, std::uint32_t> three_reg = {
            {"addu", 0x21}, {"subu", 0x23}, {"and", 0x24}, {"or", 0x25},
            {"xor", 0x26},  {"nor", 0x27},  {"slt", 0x2a}, {"sltu", 0x2b}};
        if (const auto it = three_reg.find(m); it != three_reg.end()) {
            if (!expect_operands(s, 3)) {
                out.push_back(0);
                return;
            }
            out.push_back(encode_r(reg(s.operands[1]), reg(s.operands[2]),
                                   reg(s.operands[0]), 0, it->second));
            return;
        }

        static const std::map<std::string, std::uint32_t> shifts = {
            {"sll", 0x00}, {"srl", 0x02}, {"sra", 0x03}};
        if (const auto it = shifts.find(m); it != shifts.end()) {
            if (!expect_operands(s, 3)) {
                out.push_back(0);
                return;
            }
            out.push_back(encode_r(0, reg(s.operands[1]), reg(s.operands[0]),
                                   static_cast<std::uint32_t>(value(s.operands[2])) & 0x1F,
                                   it->second));
            return;
        }

        if (m == "jr") {
            if (!expect_operands(s, 1)) {
                out.push_back(0);
                return;
            }
            out.push_back(encode_r(reg(s.operands[0]), 0, 0, 0, 0x08));
            return;
        }

        static const std::map<std::string, std::uint32_t> imm_ops = {
            {"addi", 0x08},  {"addiu", 0x09}, {"slti", 0x0a}, {"sltiu", 0x0b},
            {"andi", 0x0c},  {"ori", 0x0d},   {"xori", 0x0e}};
        if (const auto it = imm_ops.find(m); it != imm_ops.end()) {
            if (!expect_operands(s, 3)) {
                out.push_back(0);
                return;
            }
            out.push_back(encode_i(it->second, reg(s.operands[1]), reg(s.operands[0]),
                                   static_cast<std::uint32_t>(value(s.operands[2])) & 0xFFFF));
            return;
        }

        if (m == "lui") {
            if (!expect_operands(s, 2)) {
                out.push_back(0);
                return;
            }
            out.push_back(encode_i(0x0f, 0, reg(s.operands[0]),
                                   static_cast<std::uint32_t>(value(s.operands[1])) & 0xFFFF));
            return;
        }

        static const std::map<std::string, std::uint32_t> mem_ops = {
            {"lw", 0x23}, {"lbu", 0x24}, {"sw", 0x2b}, {"sb", 0x28}};
        if (const auto it = mem_ops.find(m); it != mem_ops.end()) {
            if (!expect_operands(s, 2)) {
                out.push_back(0);
                return;
            }
            auto [offset, base] = memory_operand(s.operands[1]);
            out.push_back(encode_i(it->second, base, reg(s.operands[0]),
                                   static_cast<std::uint32_t>(offset) & 0xFFFF));
            return;
        }

        if (m == "beq" || m == "bne") {
            if (!expect_operands(s, 3)) {
                out.push_back(0);
                return;
            }
            out.push_back(encode_i(m == "beq" ? 0x04 : 0x05, reg(s.operands[0]),
                                   reg(s.operands[1]), branch_offset(s.operands[2])));
            return;
        }

        if (m == "j" || m == "jal") {
            if (!expect_operands(s, 1)) {
                out.push_back(0);
                return;
            }
            const std::uint32_t target = target_address(s.operands[0]);
            out.push_back(((m == "j" ? 0x02u : 0x03u) << 26) | ((target >> 2) & 0x03FFFFFFu));
            return;
        }

        diagnostics_.error(loc_, "unknown mnemonic '" + m + "'");
        out.push_back(0);
    }

private:
    static std::uint32_t encode_r(int rs, int rt, int rd, std::uint32_t shamt,
                                  std::uint32_t funct) {
        return (static_cast<std::uint32_t>(rs) << 21) | (static_cast<std::uint32_t>(rt) << 16) |
               (static_cast<std::uint32_t>(rd) << 11) | (shamt << 6) | funct;
    }
    static std::uint32_t encode_i(std::uint32_t op, int rs, int rt, std::uint32_t imm16) {
        return (op << 26) | (static_cast<std::uint32_t>(rs) << 21) |
               (static_cast<std::uint32_t>(rt) << 16) | (imm16 & 0xFFFF);
    }

    [[nodiscard]] bool expect_operands(const Statement& s, std::size_t n) {
        if (s.operands.size() != n) {
            diagnostics_.error(loc_, "'" + s.mnemonic + "' expects " + std::to_string(n) +
                                         " operands, got " + std::to_string(s.operands.size()));
            return false;
        }
        return true;
    }

    int reg(const std::string& text) {
        if (text.empty() || text[0] != '$') {
            diagnostics_.error(loc_, "expected register, got '" + text + "'");
            return 0;
        }
        const std::string name = text.substr(1);
        if (const auto it = register_names().find(name); it != register_names().end()) {
            return it->second;
        }
        char* end = nullptr;
        const long n = std::strtol(name.c_str(), &end, 10);
        if (end != nullptr && *end == '\0' && n >= 0 && n <= 31) {
            return static_cast<int>(n);
        }
        diagnostics_.error(loc_, "unknown register '" + text + "'");
        return 0;
    }

    long value(const std::string& text) {
        if (const auto it = labels_.find(text); it != labels_.end()) {
            return static_cast<long>(it->second);
        }
        char* end = nullptr;
        const long v = std::strtol(text.c_str(), &end, 0);
        if (end == nullptr || *end != '\0') {
            diagnostics_.error(loc_, "bad immediate or unknown label '" + text + "'");
            return 0;
        }
        return v;
    }

    std::uint32_t branch_offset(const std::string& label) {
        const auto it = labels_.find(label);
        if (it == labels_.end()) {
            diagnostics_.error(loc_, "unknown branch target '" + label + "'");
            return 0;
        }
        const std::int32_t delta =
            (static_cast<std::int32_t>(it->second) - static_cast<std::int32_t>(address_ + 4)) / 4;
        if (delta < -32768 || delta > 32767) {
            diagnostics_.error(loc_, "branch target out of range");
        }
        return static_cast<std::uint32_t>(delta) & 0xFFFF;
    }

    std::uint32_t target_address(const std::string& text) {
        if (const auto it = labels_.find(text); it != labels_.end()) {
            return it->second;
        }
        return static_cast<std::uint32_t>(value(text));
    }

    /// "imm($reg)" -> {imm, reg}.
    std::pair<long, int> memory_operand(const std::string& text) {
        const std::size_t open = text.find('(');
        const std::size_t close = text.find(')');
        if (open == std::string::npos || close == std::string::npos || close < open) {
            diagnostics_.error(loc_, "expected offset(register), got '" + text + "'");
            return {0, 0};
        }
        const std::string offset_text = text.substr(0, open);
        const std::string reg_text = text.substr(open + 1, close - open - 1);
        const long offset = offset_text.empty() ? 0 : value(offset_text);
        return {offset, reg(reg_text)};
    }

    const std::map<std::string, std::uint32_t>& labels_;
    support::DiagnosticEngine& diagnostics_;
    SourceLocation loc_;
    std::uint32_t address_ = 0;
};

}  // namespace

std::optional<AssembledProgram> assemble(std::string_view source, std::uint32_t base_address,
                                         support::DiagnosticEngine& diagnostics) {
    std::vector<Statement> statements;
    std::map<std::string, std::uint32_t> labels;

    // Pass 1: tokenize lines, record labels, compute addresses.
    std::uint32_t address = base_address;
    std::uint32_t line_no = 0;
    for (std::string_view raw_line : support::split(source, '\n')) {
        ++line_no;
        std::string_view line = raw_line;
        if (const std::size_t hash = line.find_first_of("#;"); hash != std::string_view::npos) {
            line = line.substr(0, hash);
        }
        line = support::trim(line);

        // Leading labels.
        while (true) {
            const std::size_t colon = line.find(':');
            if (colon == std::string_view::npos) {
                break;
            }
            const std::string_view candidate = support::trim(line.substr(0, colon));
            if (candidate.empty() || candidate.find_first_of(" \t,($") != std::string_view::npos) {
                break;
            }
            if (labels.contains(std::string(candidate))) {
                diagnostics.error({line_no, 1}, "duplicate label '" + std::string(candidate) + "'");
            }
            labels[std::string(candidate)] = address;
            line = support::trim(line.substr(colon + 1));
        }
        if (line.empty()) {
            continue;
        }

        Statement s;
        s.location = {line_no, 1};
        const std::size_t space = line.find_first_of(" \t");
        s.mnemonic = std::string(space == std::string_view::npos ? line : line.substr(0, space));
        if (space != std::string_view::npos) {
            for (std::string_view op : support::split(line.substr(space + 1), ',')) {
                op = support::trim(op);
                if (!op.empty()) {
                    s.operands.emplace_back(op);
                }
            }
        }
        s.address = address;
        address += 4 * statement_words(s);
        statements.push_back(std::move(s));
    }

    // Pass 2: encode.
    AssembledProgram program;
    program.base_address = base_address;
    Encoder encoder(labels, diagnostics);
    for (const Statement& s : statements) {
        encoder.encode(s, program.words);
    }
    if (diagnostics.has_errors()) {
        return std::nullopt;
    }
    return program;
}

}  // namespace amsvp::vp
