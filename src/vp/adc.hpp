// ADC bridge: the boundary between the analog subsystem and the digital
// platform (the red/blue arrow of the paper's Fig. 1). Converts the observed
// analog voltage into a 12-bit register the firmware polls.
#pragma once

#include <cstdint>
#include <functional>

#include "vp/bus.hpp"

namespace amsvp::vp {

class Adc final : public BusTarget {
public:
    static constexpr std::uint32_t kData = 0x0;    ///< read: last conversion (12 bit)
    static constexpr std::uint32_t kCtrl = 0x4;    ///< write bit0: start conversion
    static constexpr std::uint32_t kStatus = 0x8;  ///< read: bit0 conversion done

    /// `sample` returns the analog voltage at the moment of conversion;
    /// voltages outside [v_min, v_max] clamp to the rail codes.
    Adc(std::function<double()> sample, double v_min, double v_max);

    [[nodiscard]] std::uint32_t read32(std::uint32_t offset) override;
    void write32(std::uint32_t offset, std::uint32_t value) override;

    [[nodiscard]] std::uint64_t conversions() const { return conversions_; }
    /// 12-bit code for a voltage (exposed for test oracles).
    [[nodiscard]] std::uint32_t code_for(double volts) const;

private:
    std::function<double()> sample_;
    double v_min_;
    double v_max_;
    std::uint32_t data_ = 0;
    bool done_ = false;
    std::uint64_t conversions_ = 0;
};

}  // namespace amsvp::vp
