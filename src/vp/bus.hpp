// Memory bus of the virtual platform (Fig. 1's digital interconnect).
//
// The CPU issues 32-bit transactions into a SystemBus that decodes them to
// RAM or to the APB bridge; the bridge forwards to peripherals with the
// two-phase (setup/access) bookkeeping of a real APB, so bus statistics in
// the Table III experiments mean something.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace amsvp::vp {

/// A slave on the bus: offsets are relative to the mapped base.
class BusTarget {
public:
    virtual ~BusTarget() = default;
    [[nodiscard]] virtual std::uint32_t read32(std::uint32_t offset) = 0;
    virtual void write32(std::uint32_t offset, std::uint32_t value) = 0;
};

struct BusStats {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
};

class SystemBus {
public:
    /// Map `target` at [base, base + size). Regions must not overlap.
    void map_region(std::string name, std::uint32_t base, std::uint32_t size,
                    BusTarget& target);

    [[nodiscard]] std::uint32_t read32(std::uint32_t address);
    void write32(std::uint32_t address, std::uint32_t value);

    /// Sub-word access implemented over aligned 32-bit transactions
    /// (little-endian byte lanes, as a real bus bridge would).
    [[nodiscard]] std::uint8_t read8(std::uint32_t address);
    void write8(std::uint32_t address, std::uint8_t value);

    [[nodiscard]] const BusStats& stats() const { return stats_; }

private:
    struct Region {
        std::string name;
        std::uint32_t base;
        std::uint32_t size;
        BusTarget* target;
    };
    [[nodiscard]] Region* decode(std::uint32_t address);

    std::vector<Region> regions_;
    BusStats stats_;
};

/// Byte-addressable RAM (little-endian).
class Ram final : public BusTarget {
public:
    explicit Ram(std::size_t size_bytes) : bytes_(size_bytes, 0) {}

    [[nodiscard]] std::uint32_t read32(std::uint32_t offset) override;
    void write32(std::uint32_t offset, std::uint32_t value) override;

    /// Bulk load (program images).
    void load(std::uint32_t offset, const std::vector<std::uint32_t>& words);

    [[nodiscard]] std::size_t size() const { return bytes_.size(); }

private:
    std::vector<std::uint8_t> bytes_;
};

/// APB bridge: decodes a peripheral window and forwards with setup/access
/// phase accounting.
class ApbBridge final : public BusTarget {
public:
    void attach(std::string name, std::uint32_t base, std::uint32_t size, BusTarget& peripheral);

    [[nodiscard]] std::uint32_t read32(std::uint32_t offset) override;
    void write32(std::uint32_t offset, std::uint32_t value) override;

    /// Completed APB transfers (each costs a setup + an access phase).
    [[nodiscard]] std::uint64_t transfers() const { return transfers_; }
    /// Total APB cycles consumed (2 per transfer).
    [[nodiscard]] std::uint64_t cycles() const { return 2 * transfers_; }

private:
    struct Slot {
        std::string name;
        std::uint32_t base;
        std::uint32_t size;
        BusTarget* peripheral;
    };
    [[nodiscard]] Slot* decode(std::uint32_t offset);

    std::vector<Slot> slots_;
    std::uint64_t transfers_ = 0;
};

}  // namespace amsvp::vp
