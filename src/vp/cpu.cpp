#include "vp/cpu.hpp"

#include "support/check.hpp"

namespace amsvp::vp {

namespace {

constexpr std::uint32_t kOpSpecial = 0x00;
constexpr std::uint32_t kOpJ = 0x02;
constexpr std::uint32_t kOpJal = 0x03;
constexpr std::uint32_t kOpBeq = 0x04;
constexpr std::uint32_t kOpBne = 0x05;
constexpr std::uint32_t kOpAddi = 0x08;
constexpr std::uint32_t kOpAddiu = 0x09;
constexpr std::uint32_t kOpSlti = 0x0a;
constexpr std::uint32_t kOpSltiu = 0x0b;
constexpr std::uint32_t kOpAndi = 0x0c;
constexpr std::uint32_t kOpOri = 0x0d;
constexpr std::uint32_t kOpXori = 0x0e;
constexpr std::uint32_t kOpLui = 0x0f;
constexpr std::uint32_t kOpLw = 0x23;
constexpr std::uint32_t kOpLbu = 0x24;
constexpr std::uint32_t kOpSb = 0x28;
constexpr std::uint32_t kOpSw = 0x2b;

constexpr std::uint32_t kFnSll = 0x00;
constexpr std::uint32_t kFnSrl = 0x02;
constexpr std::uint32_t kFnSra = 0x03;
constexpr std::uint32_t kFnJr = 0x08;
constexpr std::uint32_t kFnBreak = 0x0d;
constexpr std::uint32_t kFnAddu = 0x21;
constexpr std::uint32_t kFnSubu = 0x23;
constexpr std::uint32_t kFnAnd = 0x24;
constexpr std::uint32_t kFnOr = 0x25;
constexpr std::uint32_t kFnXor = 0x26;
constexpr std::uint32_t kFnNor = 0x27;
constexpr std::uint32_t kFnSlt = 0x2a;
constexpr std::uint32_t kFnSltu = 0x2b;

constexpr std::int32_t sign_extend16(std::uint32_t v) {
    return static_cast<std::int32_t>(static_cast<std::int16_t>(v & 0xFFFF));
}

}  // namespace

void Cpu::reset(std::uint32_t pc) {
    regs_.fill(0);
    pc_ = pc;
    halted_ = false;
    stats_ = {};
}

void Cpu::step() {
    if (halted_) {
        return;
    }
    last_fetch_address_ = pc_;
    const std::uint32_t instruction = bus_.read32(pc_);
    pc_ += 4;
    execute(instruction);
    ++stats_.instructions;
}

void Cpu::execute(std::uint32_t ins) {
    last_memory_access_ = false;
    const std::uint32_t op = ins >> 26;
    const int rs = static_cast<int>((ins >> 21) & 0x1F);
    const int rt = static_cast<int>((ins >> 16) & 0x1F);
    const int rd = static_cast<int>((ins >> 11) & 0x1F);
    const std::uint32_t shamt = (ins >> 6) & 0x1F;
    const std::uint32_t funct = ins & 0x3F;
    const std::uint32_t imm_u = ins & 0xFFFF;
    const std::int32_t imm_s = sign_extend16(ins);

    auto r = [this](int i) { return regs_[static_cast<std::size_t>(i)]; };

    switch (op) {
        case kOpSpecial:
            switch (funct) {
                case kFnSll:
                    set_reg(rd, r(rt) << shamt);
                    break;
                case kFnSrl:
                    set_reg(rd, r(rt) >> shamt);
                    break;
                case kFnSra:
                    set_reg(rd, static_cast<std::uint32_t>(
                                    static_cast<std::int32_t>(r(rt)) >> shamt));
                    break;
                case kFnJr:
                    pc_ = r(rs);
                    break;
                case kFnBreak:
                    halted_ = true;
                    break;
                case kFnAddu:
                    set_reg(rd, r(rs) + r(rt));
                    break;
                case kFnSubu:
                    set_reg(rd, r(rs) - r(rt));
                    break;
                case kFnAnd:
                    set_reg(rd, r(rs) & r(rt));
                    break;
                case kFnOr:
                    set_reg(rd, r(rs) | r(rt));
                    break;
                case kFnXor:
                    set_reg(rd, r(rs) ^ r(rt));
                    break;
                case kFnNor:
                    set_reg(rd, ~(r(rs) | r(rt)));
                    break;
                case kFnSlt:
                    set_reg(rd, static_cast<std::int32_t>(r(rs)) <
                                        static_cast<std::int32_t>(r(rt))
                                    ? 1
                                    : 0);
                    break;
                case kFnSltu:
                    set_reg(rd, r(rs) < r(rt) ? 1 : 0);
                    break;
                default:
                    AMSVP_CHECK(false, "unimplemented R-type instruction");
            }
            break;
        case kOpJ:
            pc_ = (pc_ & 0xF0000000u) | ((ins & 0x03FFFFFFu) << 2);
            break;
        case kOpJal:
            set_reg(31, pc_);
            pc_ = (pc_ & 0xF0000000u) | ((ins & 0x03FFFFFFu) << 2);
            break;
        case kOpBeq:
            if (r(rs) == r(rt)) {
                pc_ += static_cast<std::uint32_t>(imm_s << 2);
                ++stats_.branches_taken;
            }
            break;
        case kOpBne:
            if (r(rs) != r(rt)) {
                pc_ += static_cast<std::uint32_t>(imm_s << 2);
                ++stats_.branches_taken;
            }
            break;
        case kOpAddi:  // no overflow traps: behaves as addiu
        case kOpAddiu:
            set_reg(rt, r(rs) + static_cast<std::uint32_t>(imm_s));
            break;
        case kOpSlti:
            set_reg(rt, static_cast<std::int32_t>(r(rs)) < imm_s ? 1 : 0);
            break;
        case kOpSltiu:
            set_reg(rt, r(rs) < static_cast<std::uint32_t>(imm_s) ? 1 : 0);
            break;
        case kOpAndi:
            set_reg(rt, r(rs) & imm_u);
            break;
        case kOpOri:
            set_reg(rt, r(rs) | imm_u);
            break;
        case kOpXori:
            set_reg(rt, r(rs) ^ imm_u);
            break;
        case kOpLui:
            set_reg(rt, imm_u << 16);
            break;
        case kOpLw:
            set_reg(rt, bus_.read32(r(rs) + static_cast<std::uint32_t>(imm_s)));
            ++stats_.loads;
            last_memory_access_ = true;
            break;
        case kOpLbu:
            set_reg(rt, bus_.read8(r(rs) + static_cast<std::uint32_t>(imm_s)));
            ++stats_.loads;
            last_memory_access_ = true;
            break;
        case kOpSw:
            bus_.write32(r(rs) + static_cast<std::uint32_t>(imm_s), r(rt));
            ++stats_.stores;
            last_memory_access_ = true;
            break;
        case kOpSb:
            bus_.write8(r(rs) + static_cast<std::uint32_t>(imm_s),
                        static_cast<std::uint8_t>(r(rt)));
            ++stats_.stores;
            last_memory_access_ = true;
            break;
        default:
            AMSVP_CHECK(false, "unimplemented opcode");
    }
}

}  // namespace amsvp::vp
