// Memory-mapped periodic timer peripheral of the virtual platform.
//
// Firmware programs a period (nanoseconds), sets the enable bit and polls
// STATUS for the tick flag; DE-side modules can instead wait on
// tick_event(). The device rides the kernel's schedule_periodic fast path:
// its callback is registered once and re-armed by the kernel, so a running
// timer performs no heap allocation in steady state — the same extension of
// the periodic machinery as de::Event::notify_every.
#pragma once

#include <cstdint>
#include <string>

#include "de/event.hpp"
#include "de/kernel.hpp"
#include "vp/bus.hpp"

namespace amsvp::vp {

class Timer final : public BusTarget {
public:
    static constexpr std::uint32_t kCtrl = 0x0;      ///< bit0: enable (0 disables)
    static constexpr std::uint32_t kPeriodNs = 0x4;  ///< tick period in ns (latched on enable)
    static constexpr std::uint32_t kStatus = 0x8;    ///< read: bit0 tick pending; write: clear
    static constexpr std::uint32_t kCount = 0xC;     ///< ticks since the last enable

    Timer(de::Simulator& sim, std::string name = "timer");
    /// Cancels the kernel callback: a Timer may be torn down while its
    /// simulator keeps running.
    ~Timer() override { disable(); }

    [[nodiscard]] std::uint32_t read32(std::uint32_t offset) override;
    void write32(std::uint32_t offset, std::uint32_t value) override;

    /// Fires every tick; DE processes subscribe via add_sensitive().
    [[nodiscard]] de::Event& tick_event() { return tick_; }
    [[nodiscard]] std::uint64_t ticks() const { return ticks_; }
    [[nodiscard]] bool enabled() const { return enabled_; }

private:
    void enable();
    void disable();
    void tick();

    de::Simulator& sim_;
    de::Event tick_;
    std::uint32_t period_ns_ = 0;
    bool enabled_ = false;
    bool pending_ = false;
    std::uint64_t ticks_ = 0;
    de::PeriodicId periodic_ = -1;
};

}  // namespace amsvp::vp
