// Firmware programs (MIPS assembly text) executed by the virtual platform.
#pragma once

#include <string>

namespace amsvp::vp {

/// Memory map shared by firmware and platform.
inline constexpr std::uint32_t kRamBase = 0x00000000;
inline constexpr std::uint32_t kRamSize = 64 * 1024;
inline constexpr std::uint32_t kApbBase = 0x10000000;
inline constexpr std::uint32_t kUartBase = kApbBase + 0x0000;
inline constexpr std::uint32_t kAdcBase = kApbBase + 0x1000;
/// Periodic timer (kernel-backed platforms only; see vp::Timer).
inline constexpr std::uint32_t kTimerBase = kApbBase + 0x2000;

/// The smart-system application of the Table III experiments: continuously
/// start ADC conversions, low-pass the samples with a 4-tap moving average,
/// threshold at mid-scale and report every state change as '1'/'0' on the
/// UART. Runs forever (the platform stops it by simulated-time budget).
[[nodiscard]] std::string firmware_threshold_monitor();

/// Self-test program used by unit tests: exercises ALU ops, memory, and the
/// UART by computing a small checksum and printing "OK" (or "NO" on
/// mismatch), then halting.
[[nodiscard]] std::string firmware_selftest();

}  // namespace amsvp::vp
