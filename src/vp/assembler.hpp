// Two-pass assembler for the CPU's MIPS subset, so the platform's firmware
// can live as readable assembly text inside the repository.
//
// Syntax:
//   * labels:       `loop:` (own line or before an instruction)
//   * comments:     `#` or `;` to end of line
//   * registers:    `$zero $at $v0.. $a0.. $t0-$t9 $s0-$s7 $k0 $k1 $gp $sp $fp $ra`
//                   or numeric `$0`..`$31`
//   * immediates:   decimal or 0x hexadecimal, optionally negative
//   * data:         `.word <value>` (one 32-bit word)
//   * pseudo-ops:   li, la, move, nop, b, halt
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "support/diagnostics.hpp"

namespace amsvp::vp {

struct AssembledProgram {
    std::vector<std::uint32_t> words;
    std::uint32_t base_address = 0;

    [[nodiscard]] std::uint32_t size_bytes() const {
        return static_cast<std::uint32_t>(4 * words.size());
    }
};

/// Assemble `source` for loading at `base_address`. Errors go to
/// `diagnostics`; returns nullopt when any were emitted.
[[nodiscard]] std::optional<AssembledProgram> assemble(std::string_view source,
                                                       std::uint32_t base_address,
                                                       support::DiagnosticEngine& diagnostics);

}  // namespace amsvp::vp
