#include "vp/adc.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace amsvp::vp {

Adc::Adc(std::function<double()> sample, double v_min, double v_max)
    : sample_(std::move(sample)), v_min_(v_min), v_max_(v_max) {
    AMSVP_CHECK(v_max_ > v_min_, "ADC range must be non-degenerate");
    AMSVP_CHECK(sample_ != nullptr, "ADC needs a sample source");
}

std::uint32_t Adc::code_for(double volts) const {
    const double normalized = (volts - v_min_) / (v_max_ - v_min_);
    const double clamped = std::clamp(normalized, 0.0, 1.0);
    return static_cast<std::uint32_t>(std::lround(clamped * 4095.0));
}

std::uint32_t Adc::read32(std::uint32_t offset) {
    switch (offset) {
        case kData:
            return data_;
        case kStatus:
            return done_ ? 0x1 : 0x0;
        default:
            return 0;
    }
}

void Adc::write32(std::uint32_t offset, std::uint32_t value) {
    if (offset == kCtrl && (value & 0x1) != 0) {
        data_ = code_for(sample_());
        done_ = true;
        ++conversions_;
    }
}

}  // namespace amsvp::vp
