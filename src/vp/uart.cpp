#include "vp/uart.hpp"

namespace amsvp::vp {

std::uint32_t Uart::read32(std::uint32_t offset) {
    switch (offset) {
        case kStatus: {
            std::uint32_t status = 0x1;  // transmitter always ready
            if (!rx_fifo_.empty()) {
                status |= 0x2;
            }
            return status;
        }
        case kRxData: {
            if (rx_fifo_.empty()) {
                return 0;
            }
            const auto byte = static_cast<std::uint8_t>(rx_fifo_.front());
            rx_fifo_.erase(rx_fifo_.begin());
            return byte;
        }
        default:
            return 0;
    }
}

void Uart::write32(std::uint32_t offset, std::uint32_t value) {
    if (offset == kTxData) {
        tx_log_.push_back(static_cast<char>(value & 0xFF));
        ++tx_count_;
    }
}

void Uart::receive(std::string_view data) {
    rx_fifo_.append(data);
}

}  // namespace amsvp::vp
