// The complete smart-system virtual platform of Fig. 1 / Table III:
// MIPS CPU + RAM + APB bridge + UART + ADC, with the analog component
// integrated through any of the paper's six configurations.
#pragma once

#include <map>
#include <string>

#include "abstraction/signal_flow_model.hpp"
#include "de/kernel.hpp"
#include "netlist/circuit.hpp"
#include "numeric/sources.hpp"
#include "runtime/executor.hpp"
#include "spice/engine.hpp"
#include "vp/firmware.hpp"

namespace amsvp::vp {

/// How the analog device is integrated (rows of Table III). The first two
/// rows differ in the *digital* side's fidelity, see DigitalFidelity.
enum class AnalogIntegration {
    kVamsCosim,  ///< conservative solver behind the co-simulation coupler
    kEln,        ///< ELN engine inside the kernel
    kTdf,        ///< generated model in a TDF cluster
    kDe,         ///< generated model as a clocked DE module
    kCpp,        ///< generated model in the pure-C++ platform (no kernel)
};

/// Digital-platform fidelity: kRtl mirrors per-instruction bus activity onto
/// kernel signals (the "VP in Verilog, RTL" row); kTlm executes instructions
/// without per-access signal traffic (the "VP in SystemC" rows).
enum class DigitalFidelity {
    kRtl,
    kTlm,
};

[[nodiscard]] std::string_view to_string(AnalogIntegration integration);

struct PlatformConfig {
    AnalogIntegration integration = AnalogIntegration::kCpp;
    DigitalFidelity fidelity = DigitalFidelity::kTlm;

    /// Conservative form (needed for kVamsCosim / kEln).
    const netlist::Circuit* circuit = nullptr;
    /// Abstracted form (needed for kTdf / kDe / kCpp).
    const abstraction::SignalFlowModel* model = nullptr;

    std::map<std::string, numeric::SourceFunction> stimuli;
    std::string observed_pos = "out";
    std::string observed_neg = "gnd";
    double analog_timestep = 50e-9;

    /// CPU clock period; the default 50 ns (20 MHz) aligns one instruction
    /// per analog timestep.
    de::Time cpu_period = 50 * de::kNanosecond;

    std::string firmware;  ///< assembly source; empty = threshold monitor
    spice::SpiceOptions spice;

    /// Execution strategy for generated models (kTdf/kDe/kCpp rows); null =
    /// in-process bytecode. Benches install the native factory so the
    /// generated C++ runs as machine code.
    runtime::ExecutorFactory executor_factory;

    /// ADC full-scale range (the paper's circuits swing within [-6, 6] V
    /// across all four test cases).
    double adc_v_min = -6.0;
    double adc_v_max = 6.0;
};

struct PlatformResult {
    double wall_seconds = 0.0;
    std::uint64_t instructions = 0;
    std::string uart_output;
    std::uint64_t adc_conversions = 0;
    std::uint64_t bus_reads = 0;
    std::uint64_t bus_writes = 0;
    std::uint64_t apb_transfers = 0;
    std::uint64_t timer_ticks = 0;  ///< vp::Timer expirations (kernel platforms)
    de::KernelStats kernel;         ///< zeroed for the pure-C++ platform
};

/// Build and run the platform for `duration` simulated seconds.
[[nodiscard]] PlatformResult run_platform(const PlatformConfig& config, double duration);

}  // namespace amsvp::vp
