// Shared plumbing for runtime-compiled models: write generated C++ to a
// temp file, compile it with the system compiler into a shared object,
// dlopen it and resolve the entry points. Both native executors — the
// scalar NativeModel and the batched NativeBatchModel — go through this one
// path, so the temp-file lifecycle (including every failure path) and the
// compile command live in exactly one place.
//
// Temp-file contract: a compile attempt creates up to three files next to
// each other (<stem>.cpp, <stem>.so, <stem>.log). On success only the .so
// survives, owned by the returned JitLibrary and removed by its destructor.
// On any failure *after* the compiler ran successfully (dlopen error,
// missing entry point) all three are removed before returning. When the
// compiler itself fails, the .log survives — the error message points at it
// — and the other two are removed.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace amsvp::codegen::detail {

/// Temp-file stem for one compile attempt: "<tmpdir>/amsvp_native_<pid>_<n>".
/// Honors $TMPDIR (falling back to /tmp) and is unique per process and per
/// call, so concurrent compiles — even across threads — never collide.
[[nodiscard]] std::string unique_stem();

/// POSIX-shell single-quoting, so temp paths (which inherit $TMPDIR
/// verbatim) can be embedded in the std::system compile command safely.
[[nodiscard]] std::string shell_quote(const std::string& path);

/// True when a usable `c++` compiler is on PATH (cached after first call).
[[nodiscard]] bool jit_available();

/// A successfully compiled and loaded shared object. Owns the dlopen handle
/// and the .so file: destruction dlcloses and removes it.
class JitLibrary {
public:
    /// Compile `source` and resolve `required_symbols` (all of them). On
    /// failure returns nullptr with `error` set, leaving no temp files
    /// behind except the compiler log on a compilation error (the message
    /// references it).
    [[nodiscard]] static std::unique_ptr<JitLibrary> compile(
        const std::string& source, const std::vector<const char*>& required_symbols,
        std::string* error);

    ~JitLibrary();
    JitLibrary(const JitLibrary&) = delete;
    JitLibrary& operator=(const JitLibrary&) = delete;

    /// Resolved addresses, in required_symbols order.
    [[nodiscard]] const std::vector<void*>& symbols() const { return symbols_; }

private:
    JitLibrary() = default;

    void* handle_ = nullptr;
    std::string so_path_;
    std::vector<void*> symbols_;
};

}  // namespace amsvp::codegen::detail
