// Shared plumbing for runtime-compiled models: write generated C++ to a
// temp file, compile it with the system compiler into a shared object,
// dlopen it and resolve the entry points. Both native executors — the
// scalar NativeModel and the batched NativeBatchModel — go through this one
// path, so the temp-file lifecycle (including every failure path) and the
// compile command live in exactly one place.
//
// Robustness: the compiler runs under a guarded runner (its own process
// group, wall-clock timeout, SIGKILL on expiry) instead of a bare
// std::system, and the whole compile→dlopen→dlsym sequence retries with
// backoff (JitOptions::attempts) so a transient failure — an OOM-killed
// cc1plus, a full /tmp racing a cleanup — cannot permanently knock the
// native backend out. On a final compile failure the thrown-back error
// message carries the first ~2 KB of the compiler's stderr plus the .log
// path. Deterministic fault sites "jit.compile", "jit.dlopen" and
// "jit.dlsym" (support/fault.hpp) let tests exercise each failure leg.
//
// Temp-file contract: a compile attempt creates up to three files next to
// each other (<stem>.cpp, <stem>.so, <stem>.log). On success only the .so
// survives, owned by the returned JitLibrary and removed by its destructor.
// On any failure *after* the compiler ran successfully (dlopen error,
// missing entry point) all three are removed before returning. When the
// compiler itself fails, the .log survives — the error message points at it
// — and the other two are removed. JitOptions::keep_temps disables all of
// this removal (including the destructor's) so failed or successful
// artifacts can be inspected; the error message then names the source too.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace amsvp::codegen::detail {

/// Temp-file stem for one compile attempt: "<tmpdir>/amsvp_native_<pid>_<n>".
/// Honors $TMPDIR (falling back to /tmp) and is unique per process and per
/// call, so concurrent compiles — even across threads — never collide.
[[nodiscard]] std::string unique_stem();

/// POSIX-shell single-quoting, so temp paths (which inherit $TMPDIR
/// verbatim) can be embedded in the shell compile command safely.
[[nodiscard]] std::string shell_quote(const std::string& path);

/// True when a usable `c++` compiler is on PATH (cached after first call).
[[nodiscard]] bool jit_available();

/// Process-wide count of external-compiler invocations attempted by
/// JitLibrary::compile (each retry counts; an injected jit.compile fault
/// counts as the invocation it models). Warm-path guarantees — "a repeat
/// sweep of a cached model runs zero compiles" — are asserted as a zero
/// delta of this counter across the operation under test.
[[nodiscard]] std::uint64_t compile_invocations();

/// Knobs for one JitLibrary::compile call. The defaults suit interactive
/// use; long-running sweep services may want a tighter timeout and more
/// attempts (see runtime::SweepOptions, which forwards its jit_* fields
/// here).
struct JitOptions {
    /// Wall-clock limit per compiler invocation, after which its whole
    /// process group is killed and the attempt counts as failed (and
    /// retryable). <= 0 means no limit.
    int timeout_ms = 60000;
    /// Total tries of the full compile→dlopen→dlsym sequence (>= 1). Every
    /// failure mode is retried — a deterministic one just fails identically
    /// `attempts` times and costs `attempts - 1` extra compiler runs.
    int attempts = 2;
    /// Sleep before retry k is `backoff_ms << (k - 1)` (100, 200, 400, ...).
    int backoff_ms = 100;
    /// Keep every temp file (.cpp/.so/.log) on success and failure alike.
    bool keep_temps = false;
};

/// Outcome of one guarded shell command run.
struct CommandResult {
    int exit_code = -1;     ///< process exit code, or -1 when signalled/failed
    bool timed_out = false; ///< killed because the wall-clock limit expired
};

/// Run `command` through /bin/sh in its own process group; on timeout the
/// whole group receives SIGKILL (a compiler driver's children die with it).
[[nodiscard]] CommandResult run_guarded_command(const std::string& command, int timeout_ms);

/// A successfully compiled and loaded shared object. Owns the dlopen handle
/// and the .so file: destruction dlcloses and removes it (removal skipped
/// when compiled with keep_temps).
class JitLibrary {
public:
    /// Compile `source` and resolve `required_symbols` (all of them),
    /// retrying per `options`. On failure returns nullptr with `error` set
    /// to the *last* attempt's diagnostic (including captured compiler
    /// stderr for compile errors), leaving no temp files behind except the
    /// compiler log on a compilation error — or everything, with
    /// options.keep_temps.
    [[nodiscard]] static std::unique_ptr<JitLibrary> compile(
        const std::string& source, const std::vector<const char*>& required_symbols,
        std::string* error, const JitOptions& options = {});

    ~JitLibrary();
    JitLibrary(const JitLibrary&) = delete;
    JitLibrary& operator=(const JitLibrary&) = delete;

    /// Resolved addresses, in required_symbols order.
    [[nodiscard]] const std::vector<void*>& symbols() const { return symbols_; }

    /// Path of the owned shared object. With JitOptions::keep_temps the
    /// matching <stem>.cpp and <stem>.log live alongside it and all three
    /// survive destruction — this is how tools point users at the kept
    /// artifacts.
    [[nodiscard]] const std::string& so_path() const { return so_path_; }

private:
    JitLibrary() = default;

    [[nodiscard]] static std::unique_ptr<JitLibrary> compile_once(
        const std::string& source, const std::vector<const char*>& required_symbols,
        std::string* error, const JitOptions& options, bool keep_failure_log);

    void* handle_ = nullptr;
    std::string so_path_;
    bool keep_so_ = false;  ///< keep_temps: leave the .so behind at destruction
    std::vector<void*> symbols_;
};

}  // namespace amsvp::codegen::detail
