// Step 4 of the flow (Section IV-D): code generation.
//
// Three targets, matching the paper's evaluation rows:
//  * plain C++     — dependency-free struct with a step() method (Fig. 7b);
//  * SystemC-DE    — an SC_MODULE with a clocked process over sc_signal ports;
//  * SystemC-AMS   — an SCA_TDF_MODULE with set_timestep / processing().
//
// The C++ target is directly compilable (integration tests build and run it
// with the system compiler); the SystemC targets emit source for the
// standard OSCI APIs so they can be dropped into an existing virtual
// platform. In-tree simulation of DE/TDF backends does not go through
// generated text: the kernels execute the SignalFlowModel directly, so
// backend benchmarks compare kernel overhead, not codegen fidelity.
//
// All three emitters render the *fused register-machine program* — the same
// mid-level IR the in-process interpreter executes — not the raw expression
// trees. Generated code therefore carries constant folding, cross-assignment
// CSE, multiply-add superinstructions and linear-combination FMA chains, and
// (compiled with -ffp-contract=off) reproduces EvalStrategy::kFused
// bit-for-bit.
#pragma once

#include <memory>
#include <string>

#include "abstraction/signal_flow_model.hpp"

namespace amsvp::runtime {
class ModelLayout;
}  // namespace amsvp::runtime

namespace amsvp::codegen {

enum class Target {
    kCpp,
    kSystemCDe,
    kSystemCAmsTdf,
};

[[nodiscard]] std::string_view to_string(Target target);

struct CodegenOptions {
    /// Class / module name; empty derives one from the model name.
    std::string type_name;
    /// Emit a doc-comment header with provenance information.
    bool header_comment = true;
    /// C++ target only: emit a `double slot_value(int) const` accessor that
    /// exposes the model's slot file (runtime ModelLayout order), so a
    /// compiled generated model can be compared against the in-process
    /// fused interpreter slot-for-slot. Also forces the `_abstime` member
    /// so the time slot is observable.
    bool slot_accessor = false;
    /// C++ target only: also emit a batched entry point
    /// `<type>_step_batch(double* s, int batch)` that steps `batch`
    /// instances stored in one padded strided slot file (slot i of lane l
    /// at s[i * S + l], S = batch rounded up to whole vector rows — the
    /// runtime::LaneLayout / BatchCompiledModel layout, fused scratch
    /// slots included; `<type>_batch_slot_count` gives the per-lane slot
    /// count). The kernel renders the same fused instruction stream as
    /// step(), one inner lane loop per instruction, with pinned widths
    /// 1/4/8/16/32 mirroring FusedProgram::execute_batch — so a
    /// native-compiled sweep is bit-identical to the batch interpreter lane
    /// by lane. The caller owns the slot file and writes inputs and the
    /// $abstime row before each call.
    bool batch_kernel = false;
    /// Pre-compiled layout to render (must be the kFused compile of the
    /// model being emitted). When null the emitter compiles one itself;
    /// passing the layout lets a caller that also *executes* against it —
    /// the native batch path — share a single compile, making the emitted
    /// slot indices and the runtime layout the same object by
    /// construction.
    std::shared_ptr<const runtime::ModelLayout> layout;
};

/// Generate source text for the requested target.
[[nodiscard]] std::string generate(const abstraction::SignalFlowModel& model, Target target,
                                   const CodegenOptions& options = {});

/// Individual emitters (generate() dispatches to these).
[[nodiscard]] std::string emit_cpp(const abstraction::SignalFlowModel& model,
                                   const CodegenOptions& options);
[[nodiscard]] std::string emit_systemc_de(const abstraction::SignalFlowModel& model,
                                          const CodegenOptions& options);
[[nodiscard]] std::string emit_systemc_tdf(const abstraction::SignalFlowModel& model,
                                           const CodegenOptions& options);

/// Sanitised default type name for a model ("rc1_model").
[[nodiscard]] std::string default_type_name(const abstraction::SignalFlowModel& model);

}  // namespace amsvp::codegen
