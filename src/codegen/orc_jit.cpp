#include "codegen/orc_jit.hpp"

#include <atomic>

#include "support/check.hpp"
#include "support/fault.hpp"

#ifdef AMSVP_HAS_LLVM
#include <llvm/ExecutionEngine/Orc/ExecutionUtils.h>
#include <llvm/ExecutionEngine/Orc/JITTargetMachineBuilder.h>
#include <llvm/ExecutionEngine/Orc/LLJIT.h>
#include <llvm/ExecutionEngine/Orc/ThreadSafeModule.h>
#include <llvm/IR/Verifier.h>
#include <llvm/Support/Error.h>
#include <llvm/Support/raw_ostream.h>
#include <llvm/Target/TargetMachine.h>

#include "codegen/llvm_lowering_internal.hpp"
#endif

namespace amsvp::codegen {

namespace orc_detail {
namespace {
std::atomic<std::uint64_t> g_orc_compile_invocations{0};
}  // namespace

std::uint64_t orc_compile_invocations() {
    return g_orc_compile_invocations.load(std::memory_order_relaxed);
}

}  // namespace orc_detail

// ---------------------------------------------------------------------------
// Shared between the LLVM and the stub build.

std::shared_ptr<const OrcJitProgram> OrcJitProgram::compile(
    const abstraction::SignalFlowModel& model, std::string* error) {
    return compile(runtime::ModelLayout::compile(model, runtime::EvalStrategy::kFused),
                   error);
}

OrcBatchModel::OrcBatchModel(std::shared_ptr<const OrcJitProgram> program, int batch)
    : BatchCompiledModel(program->layout(), batch), program_(std::move(program)) {}

std::unique_ptr<OrcBatchModel> OrcBatchModel::compile(
    const abstraction::SignalFlowModel& model, int batch, std::string* error) {
    auto program = OrcJitProgram::compile(model, error);
    if (program == nullptr) {
        return nullptr;
    }
    return std::make_unique<OrcBatchModel>(std::move(program), batch);
}

void OrcBatchModel::step(double time_seconds) {
    double* slots = slot_data();
    const int lanes = batch();
    double* time_lane = slot_row(layout()->time_slot());
    // Padded row: the kernel computes the ghost lanes too.
    const int padded = runtime::LaneLayout::padded_width(lanes);
    for (int l = 0; l < padded; ++l) {
        time_lane[l] = time_seconds;
    }
    program_->step_batch(slots, lanes);
}

std::unique_ptr<runtime::BatchExecutor> OrcBatchModel::make_shard(int lane_count) const {
    return std::make_unique<OrcBatchModel>(program_, lane_count);
}

std::unique_ptr<runtime::BatchExecutor> OrcBatchModel::make_fallback_shard(
    int lane_count) const {
    // The base class builds a fused interpreter batch over the same layout:
    // no JIT artifact involved, results bit-identical to the kernel.
    return BatchCompiledModel::make_shard(lane_count);
}

#ifdef AMSVP_HAS_LLVM

// ---------------------------------------------------------------------------
// The real thing: lower -> verify -> fixed pass pipeline -> LLJIT materialize.

/// Owns the LLJIT instance. Kept out of the header so public includes
/// stay LLVM-free; destruction releases the JITed code (after every
/// shared_ptr<const OrcJitProgram> holder is gone).
class OrcJitProgram::Engine {
public:
    std::unique_ptr<llvm::orc::LLJIT> jit;
};

OrcJitProgram::~OrcJitProgram() = default;

bool orc_available() { return true; }

namespace {

void set_error(std::string* error, std::string message) {
    if (error != nullptr) {
        *error = std::move(message);
    }
}

}  // namespace

std::shared_ptr<const OrcJitProgram> OrcJitProgram::compile(
    std::shared_ptr<const runtime::ModelLayout> layout, std::string* error) {
    orc_detail::ensure_native_target();
    orc_detail::g_orc_compile_invocations.fetch_add(1, std::memory_order_relaxed);
    // Deterministic failure leg for robustness tests: models "the JIT could
    // not materialize machine code" without needing a real OOM or a broken
    // target. Callers take the same fallback path a real failure would.
    if (support::fault::should_fire("jit.orc_materialize")) {
        set_error(error, "injected fault: jit.orc_materialize");
        return nullptr;
    }

    auto jtmb = llvm::orc::JITTargetMachineBuilder::detectHost();
    if (!jtmb) {
        set_error(error, "cannot detect host target: " + llvm::toString(jtmb.takeError()));
        return nullptr;
    }
    // FastISel + linear-scan register allocation: the mid-end pipeline has
    // already CSE'd and vectorized the kernels, and SelectionDAG at any
    // higher level costs ~10x the materialize time on these straight-line
    // bodies for a modest steady-state gain. Cold-compile latency is the
    // reason this backend exists.
    jtmb->setCodeGenOptLevel(llvm::CodeGenOpt::None);
    auto tm = jtmb->createTargetMachine();
    if (!tm) {
        set_error(error,
                  "cannot create target machine: " + llvm::toString(tm.takeError()));
        return nullptr;
    }

    orc_detail::LoweredModule lowered = orc_detail::lower_model(*layout);
    lowered.module->setDataLayout((*tm)->createDataLayout());
    lowered.module->setTargetTriple((*tm)->getTargetTriple().str());

    std::string verify_text;
    llvm::raw_string_ostream verify_stream(verify_text);
    if (llvm::verifyModule(*lowered.module, &verify_stream)) {
        set_error(error, "lowered module failed verification: " + verify_stream.str());
        return nullptr;
    }

    // The fixed pipeline runs up front (LLJIT adds no IR optimization of
    // its own), so what materializes is exactly the optimized module the
    // pre/post dumps show.
    orc_detail::run_opt_pipeline(*lowered.module, tm->get());

    auto jit = llvm::orc::LLJITBuilder()
                   .setJITTargetMachineBuilder(std::move(*jtmb))
                   .create();
    if (!jit) {
        set_error(error, "cannot create LLJIT: " + llvm::toString(jit.takeError()));
        return nullptr;
    }
    // Resolve the declared libm symbols (exp, log, pow, ...) against this
    // process — the exact functions the fused interpreter calls, which is
    // half of the bit-for-bit contract.
    auto generator = llvm::orc::DynamicLibrarySearchGenerator::GetForCurrentProcess(
        (*jit)->getDataLayout().getGlobalPrefix());
    if (!generator) {
        set_error(error,
                  "cannot search process symbols: " + llvm::toString(generator.takeError()));
        return nullptr;
    }
    (*jit)->getMainJITDylib().addGenerator(std::move(*generator));

    if (llvm::Error err = (*jit)->addIRModule(llvm::orc::ThreadSafeModule(
            std::move(lowered.module), std::move(lowered.context)))) {
        set_error(error, "cannot add module: " + llvm::toString(std::move(err)));
        return nullptr;
    }

    auto step = (*jit)->lookup(orc_detail::kStepSymbol);
    if (!step) {
        set_error(error, "cannot materialize step kernel: " +
                             llvm::toString(step.takeError()));
        return nullptr;
    }
    auto step_batch = (*jit)->lookup(orc_detail::kStepBatchSymbol);
    if (!step_batch) {
        set_error(error, "cannot materialize step_batch kernel: " +
                             llvm::toString(step_batch.takeError()));
        return nullptr;
    }

    auto program = std::shared_ptr<OrcJitProgram>(new OrcJitProgram());
    program->engine_ = std::make_unique<Engine>();
    program->engine_->jit = std::move(*jit);
    program->step_fn_ = reinterpret_cast<StepFn>(step->getAddress());
    program->step_batch_fn_ = reinterpret_cast<StepBatchFn>(step_batch->getAddress());
    program->layout_ = std::move(layout);
    return program;
}

#else  // !AMSVP_HAS_LLVM

// ---------------------------------------------------------------------------
// Stub build (AMSVP_WITH_LLVM=OFF): compile() reports unavailability; the
// external-compiler path (native_batch.hpp) stays the native backend.

class OrcJitProgram::Engine {};

OrcJitProgram::~OrcJitProgram() = default;

bool orc_available() { return false; }

std::shared_ptr<const OrcJitProgram> OrcJitProgram::compile(
    std::shared_ptr<const runtime::ModelLayout> /*layout*/, std::string* error) {
    if (error != nullptr) {
        *error = "in-process ORC JIT unavailable: built with AMSVP_WITH_LLVM=OFF";
    }
    return nullptr;
}

#endif  // AMSVP_HAS_LLVM

}  // namespace amsvp::codegen
