#include "codegen/emit_common.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>

#include "codegen/codegen.hpp"
#include "runtime/model_layout.hpp"
#include "support/check.hpp"
#include "support/strings.hpp"

namespace amsvp::codegen::detail {

using abstraction::Assignment;
using abstraction::SignalFlowModel;
using expr::FusedInstr;
using expr::FusedOp;
using expr::FusedProgram;
using expr::LinTerm;
using expr::Symbol;

std::string history_name(const std::string& id, int delay) {
    if (delay == 1) {
        return id + "_prev";
    }
    return id + "_prev" + std::to_string(delay);
}

namespace {

/// A double literal, parenthesized when negative so it can sit to the right
/// of any binary operator ("a * (-0.5)").
std::string literal(double value) {
    std::string s = support::format_double(value);
    if (!s.empty() && s[0] == '-') {
        return "(" + s + ")";
    }
    return s;
}

/// Renders fused instructions as C++ statements — over named variables
/// (the scalar step() body) or over a strided batch slot file (the
/// step_batch kernel: slot i of lane l at `s[i * S + l]`, where S is the
/// runtime::LaneLayout padded row stride the kernel computes from the lane
/// count; statements meant to sit inside a per-instruction lane loop).
///
/// Every statement performs exactly the arithmetic of the corresponding
/// interpreter case in FusedProgram::execute_impl — same operations, same
/// order, each rounding separately — so a generated model compiled with
/// -ffp-contract=off matches the fused interpreter bit-for-bit (lane by
/// lane, in the batch form).
class ProgramRenderer {
public:
    enum class Addressing {
        kNamed,    ///< model slots as named members, scratch as `_t<n>` locals
        kStrided,  ///< every slot as `s[<slot> * S + l]` (batch kernel)
    };

    ProgramRenderer(const FusedProgram& program, const std::vector<std::string>& slot_names,
                    int time_slot, Addressing addressing = Addressing::kNamed)
        : program_(program), slot_names_(slot_names), time_slot_(time_slot),
          addressing_(addressing) {
        for (const auto& [slot, value] : program.constants()) {
            const_values_.emplace(slot, value);
        }
    }

    [[nodiscard]] bool time_was_read() const { return time_read_; }

    /// Names of the scratch locals the program needs, declaration order.
    [[nodiscard]] std::vector<std::string> scratch_declarations() const {
        std::set<std::int32_t> regs;
        const auto model_slots = static_cast<std::int32_t>(slot_names_.size());
        for (const FusedInstr& instr : program_.instructions()) {
            if (instr.dst >= model_slots) {
                regs.insert(instr.dst);
            }
        }
        std::vector<std::string> out;
        out.reserve(regs.size());
        for (const std::int32_t reg : regs) {
            out.push_back("double _t" + std::to_string(reg - model_slots) + " = 0;");
        }
        return out;
    }

    [[nodiscard]] std::string statement(const FusedInstr& I) {
        const std::string dst = operand(I.dst);
        switch (I.op) {
            case FusedOp::kConst:
                return dst + " = " + support::format_double(I.imm) + ";";
            case FusedOp::kCopy:
                return dst + " = " + operand(I.a) + ";";
            case FusedOp::kNeg:
                return dst + " = -" + operand(I.a) + ";";
            case FusedOp::kNot:
                return dst + " = (" + operand(I.a) + " == 0.0 ? 1.0 : 0.0);";
            case FusedOp::kExp:
                return unary_call(dst, "std::exp", I);
            case FusedOp::kLn:
                return unary_call(dst, "std::log", I);
            case FusedOp::kLog10:
                return unary_call(dst, "std::log10", I);
            case FusedOp::kSqrt:
                return unary_call(dst, "std::sqrt", I);
            case FusedOp::kSin:
                return unary_call(dst, "std::sin", I);
            case FusedOp::kCos:
                return unary_call(dst, "std::cos", I);
            case FusedOp::kTan:
                return unary_call(dst, "std::tan", I);
            case FusedOp::kAbs:
                return unary_call(dst, "std::fabs", I);
            case FusedOp::kAdd:
                return infix(dst, I, " + ");
            case FusedOp::kSub:
                return infix(dst, I, " - ");
            case FusedOp::kMul:
                return infix(dst, I, " * ");
            case FusedOp::kDiv:
                return infix(dst, I, " / ");
            case FusedOp::kPow:
                return dst + " = std::pow(" + operand(I.a) + ", " + operand(I.b) + ");";
            case FusedOp::kMin:
                return dst + " = std::min(" + operand(I.a) + ", " + operand(I.b) + ");";
            case FusedOp::kMax:
                return dst + " = std::max(" + operand(I.a) + ", " + operand(I.b) + ");";
            case FusedOp::kLt:
                return compare(dst, I, " < ");
            case FusedOp::kLe:
                return compare(dst, I, " <= ");
            case FusedOp::kGt:
                return compare(dst, I, " > ");
            case FusedOp::kGe:
                return compare(dst, I, " >= ");
            case FusedOp::kEq:
                return compare(dst, I, " == ");
            case FusedOp::kNe:
                return compare(dst, I, " != ");
            case FusedOp::kAnd:
                return dst + " = (" + operand(I.a) + " != 0.0 && " + operand(I.b) +
                       " != 0.0 ? 1.0 : 0.0);";
            case FusedOp::kOr:
                return dst + " = (" + operand(I.a) + " != 0.0 || " + operand(I.b) +
                       " != 0.0 ? 1.0 : 0.0);";
            case FusedOp::kAddImm:
                return dst + " = " + operand(I.a) + " + " + literal(I.imm) + ";";
            case FusedOp::kSubImm:
                return dst + " = " + operand(I.a) + " - " + literal(I.imm) + ";";
            case FusedOp::kRSubImm:
                return dst + " = " + literal(I.imm) + " - " + operand(I.a) + ";";
            case FusedOp::kMulImm:
                return dst + " = " + operand(I.a) + " * " + literal(I.imm) + ";";
            case FusedOp::kDivImm:
                return dst + " = " + operand(I.a) + " / " + literal(I.imm) + ";";
            case FusedOp::kRDivImm:
                return dst + " = " + literal(I.imm) + " / " + operand(I.a) + ";";
            case FusedOp::kMulAdd:
                return dst + " = " + operand(I.a) + " * " + operand(I.b) + " + " +
                       operand(I.c) + ";";
            case FusedOp::kMulSub:
                return dst + " = " + operand(I.a) + " * " + operand(I.b) + " - " +
                       operand(I.c) + ";";
            case FusedOp::kMulRSub:
                return dst + " = " + operand(I.c) + " - " + operand(I.a) + " * " +
                       operand(I.b) + ";";
            case FusedOp::kMulAddImm:
                return dst + " = " + operand(I.a) + " * " + literal(I.imm) + " + " +
                       operand(I.b) + ";";
            case FusedOp::kSelect:
                return dst + " = (" + operand(I.a) + " != 0.0 ? " + operand(I.b) + " : " +
                       operand(I.c) + ");";
            case FusedOp::kLinComb:
                return lincomb(dst, I);
        }
        AMSVP_CHECK(false, "unhandled fused opcode in emitter");
        return {};
    }

private:
    std::string operand(std::int32_t slot) {
        if (slot == time_slot_) {
            time_read_ = true;
        }
        // Pooled constants inline as literals in both addressing modes (the
        // batch kernel never materializes the constant-pool rows).
        const auto it = const_values_.find(slot);
        if (it != const_values_.end()) {
            return literal(it->second);
        }
        if (addressing_ == Addressing::kStrided) {
            return "s[" + std::to_string(slot) + " * S + l]";
        }
        if (slot < static_cast<std::int32_t>(slot_names_.size())) {
            return slot_names_[static_cast<std::size_t>(slot)];
        }
        return "_t" + std::to_string(slot - static_cast<std::int32_t>(slot_names_.size()));
    }

    std::string unary_call(const std::string& dst, std::string_view fn, const FusedInstr& I) {
        return dst + " = " + std::string(fn) + "(" + operand(I.a) + ");";
    }

    std::string infix(const std::string& dst, const FusedInstr& I, std::string_view op) {
        return dst + " = " + operand(I.a) + std::string(op) + operand(I.b) + ";";
    }

    std::string compare(const std::string& dst, const FusedInstr& I, std::string_view op) {
        return dst + " = (" + operand(I.a) + std::string(op) + operand(I.b) +
               " ? 1.0 : 0.0);";
    }

    /// One FMA chain, left-associated exactly like the interpreter's
    /// sequential accumulator (bias first, then every term in order). A
    /// negative coefficient renders as "- |c| * x", which is bit-identical
    /// to adding c * x (IEEE sign symmetry of multiplication).
    std::string lincomb(const std::string& dst, const FusedInstr& I) {
        std::string rhs = support::format_double(I.imm);
        for (std::int32_t k = 0; k < I.b; ++k) {
            const LinTerm& t = program_.lin_terms()[static_cast<std::size_t>(I.a + k)];
            const bool negative = std::signbit(t.coeff);
            rhs += negative ? " - " : " + ";
            rhs += support::format_double(std::fabs(t.coeff)) + " * " + operand(t.slot);
        }
        return dst + " = " + rhs + ";";
    }

    const FusedProgram& program_;
    const std::vector<std::string>& slot_names_;
    int time_slot_;
    Addressing addressing_;
    std::unordered_map<std::int32_t, double> const_values_;
    bool time_read_ = false;
};

}  // namespace

EmitPlan build_plan(const SignalFlowModel& model, const CodegenOptions& options) {
    EmitPlan plan;
    plan.type_name =
        options.type_name.empty() ? default_type_name(model) : options.type_name;
    plan.timestep = model.timestep;

    for (const Symbol& in : model.inputs) {
        plan.inputs.push_back(in.identifier());
    }
    for (const Symbol& out : model.outputs) {
        plan.outputs.push_back(out.identifier());
    }

    const std::set<std::string> input_ids(plan.inputs.begin(), plan.inputs.end());
    std::set<std::string> state_ids;
    for (const Symbol& s : model.state_symbols()) {
        const int depth = model.max_delay(s);
        double initial = 0.0;
        if (const auto it = model.initial_values.find(s); it != model.initial_values.end()) {
            initial = it->second;
        }
        plan.states.push_back(EmitPlan::StateVar{s.identifier(), depth, initial,
                                                 input_ids.contains(s.identifier())});
        state_ids.insert(s.identifier());
    }
    for (const Assignment& a : model.assignments) {
        const std::string id = a.target.identifier();
        if (!state_ids.contains(id) && !input_ids.contains(id) &&
            std::find(plan.plain_members.begin(), plan.plain_members.end(), id) ==
                plan.plain_members.end()) {
            plan.plain_members.push_back(id);
        }
    }

    // Single mid-level IR: the same fused compile the interpreter executes
    // (reused when the caller already holds it — the native batch path).
    const auto layout = options.layout != nullptr
                            ? options.layout
                            : runtime::ModelLayout::compile(model,
                                                            runtime::EvalStrategy::kFused);
    AMSVP_CHECK(layout->strategy() == runtime::EvalStrategy::kFused,
                "codegen renders the fused compile");

    // Model slot -> variable name ($abstime last, overriding its identifier).
    plan.slot_names.assign(layout->model_slot_count(), {});
    for (const auto& [symbol, slots] : layout->symbol_slots()) {
        plan.slot_names[static_cast<std::size_t>(slots.base)] = symbol.identifier();
        for (int k = 1; k <= slots.depth; ++k) {
            plan.slot_names[static_cast<std::size_t>(slots.base + k)] =
                history_name(symbol.identifier(), k);
        }
    }
    plan.slot_names[static_cast<std::size_t>(layout->time_slot())] = "_abstime";

    ProgramRenderer renderer(layout->fused_program(), plan.slot_names, layout->time_slot());
    for (const FusedInstr& instr : layout->fused_program().instructions()) {
        plan.assignments.push_back(renderer.statement(instr));
    }
    plan.scratch_locals = renderer.scratch_declarations();
    plan.uses_time = renderer.time_was_read() || options.slot_accessor;
    plan.total_slot_count = static_cast<int>(layout->slot_count());
    plan.time_slot = layout->time_slot();

    // History rotation straight from the runtime layout, deepest first —
    // the same order CompiledModel::step rotates in.
    for (const EmitPlan::StateVar& s : plan.states) {
        for (int k = s.depth; k >= 1; --k) {
            const std::string to = history_name(s.id, k);
            const std::string from = (k == 1) ? s.id : history_name(s.id, k - 1);
            plan.rotations.push_back(to + " = " + from + ";");
        }
    }

    if (options.batch_kernel) {
        // The strided form of the same program: each statement re-renders
        // with slot-file addressing and gets its own lane loop, exactly the
        // shape of FusedProgram::execute_impl's per-instruction loops. The
        // loops run to L — the full padded row for dynamic widths, so ghost
        // lanes compute as throwaway instances instead of leaving the
        // compiler a non-row-multiple trip count to peel a tail for.
        ProgramRenderer strided(layout->fused_program(), plan.slot_names,
                                layout->time_slot(),
                                ProgramRenderer::Addressing::kStrided);
        for (const FusedInstr& instr : layout->fused_program().instructions()) {
            plan.batch_statements.push_back("for (int l = 0; l < L; ++l) " +
                                            strided.statement(instr));
        }
        // Rotation rows from the runtime layout (lane loops instead of the
        // interpreter's row memcpy — same elements, same order).
        for (const runtime::ModelLayout::SymbolSlots& r : layout->rotations()) {
            for (int k = r.depth; k >= 1; --k) {
                plan.batch_rotations.push_back(
                    "for (int l = 0; l < L; ++l) s[" + std::to_string(r.base + k) +
                    " * S + l] = s[" + std::to_string(r.base + k - 1) + " * S + l];");
            }
        }
    }
    return plan;
}

std::string slot_accessor_body(const EmitPlan& plan, std::string_view indent) {
    const std::string pad(indent);
    std::string out;
    out += pad + "switch (i) {\n";
    for (std::size_t s = 0; s < plan.slot_names.size(); ++s) {
        out += pad + "    case " + std::to_string(s) + ": return " + plan.slot_names[s] +
               ";\n";
    }
    out += pad + "    default: return 0.0;\n";
    out += pad + "}\n";
    return out;
}

std::string provenance_comment(const SignalFlowModel& model, std::string_view target_name) {
    std::string out;
    out += "// Generated by the amsvp abstraction flow (DATE'16 reproduction).\n";
    out += "// Model: " + model.name + "; target: " + std::string(target_name) + ".\n";
    out += "// Timestep: " + support::format_double(model.timestep) + " s; " +
           std::to_string(model.assignments.size()) + " assignments, " +
           std::to_string(model.state_symbols().size()) + " state variables.\n";
    out += "// Lowered through the fused register-machine IR: constant folding,\n";
    out += "// cross-assignment CSE, multiply-add fusion and linear-combination\n";
    out += "// chains are shared with the in-process interpreter.\n";
    return out;
}

}  // namespace amsvp::codegen::detail
