// Internal LLVM-facing surface of the lowering pass, shared by
// llvm_lowering.cpp (IR text dumps) and orc_jit.cpp (LLJIT
// materialization). Only those two translation units may include this
// header, and only under AMSVP_HAS_LLVM — public headers stay LLVM-free
// so the rest of the tree (and every test binary) builds without the LLVM
// include paths.
#pragma once

#ifndef AMSVP_HAS_LLVM
#error "llvm_lowering_internal.hpp requires an AMSVP_WITH_LLVM=ON build"
#endif

#include <memory>
#include <string>

#include <llvm/IR/LLVMContext.h>
#include <llvm/IR/Module.h>

#include "runtime/model_layout.hpp"

namespace llvm {
class TargetMachine;
}  // namespace llvm

namespace amsvp::codegen::orc_detail {

/// InitializeNativeTarget* exactly once per process (safe from any
/// thread); every LLVM-touching entry point calls this first.
void ensure_native_target();

/// Entry-point names the lowering defines in every module.
inline constexpr const char* kStepSymbol = "amsvp_orc_step";
inline constexpr const char* kStepBatchSymbol = "amsvp_orc_step_batch";

/// One lowered model: the module and the context that owns its types.
/// Every call gets a fresh context, so concurrent compiles never share
/// LLVM state.
struct LoweredModule {
    std::unique_ptr<llvm::LLVMContext> context;
    std::unique_ptr<llvm::Module> module;
};

/// Lower `layout`'s fused program (all opcodes, history rotations
/// included) into a fresh module defining kStepSymbol and
/// kStepBatchSymbol. The batch function is vector-native: explicit
/// <runtime::LaneLayout::kVectorRow x double> rows over every padded row
/// of the strided slot file (ghost lanes compute as throwaway instances;
/// no scalar tail) — no vectorization metadata, no reliance on
/// loop-vectorize. Never applies fast-math or contract flags;
/// libm calls are declared, nobuiltin, unresolved (scalarized per lane in
/// the vector rows) — the JIT binds them to the process's own libm.
/// Aborts on an unknown opcode (impossible by construction: the switch
/// covers the enum).
[[nodiscard]] LoweredModule lower_model(const runtime::ModelLayout& layout);

/// Run the fixed compile-latency-tuned new-pass-manager pipeline over
/// `module` in place: early-cse / instcombine / simplifycfg — the handful
/// of passes that pay for themselves on kernels lowered straight to their
/// final vector shape (no loop-rotate/loop-vectorize stage anymore), at a
/// fraction of the default O2 pipeline's walltime (the point of JITting
/// in-process is the cold-compile latency). `tm` supplies the target
/// analyses and may be null for a target-agnostic run. FP contraction
/// stays off by construction: the pipeline can only contract where
/// instructions carry `contract`/`fast` flags, and lower_model emits
/// none.
void run_opt_pipeline(llvm::Module& module, llvm::TargetMachine* tm);

/// print() the module to a string (pre/post-pipeline dumps).
[[nodiscard]] std::string module_to_string(const llvm::Module& module);

}  // namespace amsvp::codegen::orc_detail
