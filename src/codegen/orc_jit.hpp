// In-process ORC JIT execution of the fused program: the native backend
// without the external-compiler roundtrip.
//
// OrcJitProgram lowers a model's fused instruction stream to LLVM IR
// (llvm_lowering.hpp), runs the fixed pass pipeline and materializes the
// step kernels through LLJIT — all inside this process, no compiler on
// PATH, no temp files, no dlopen. Cold compiles are milliseconds instead
// of the external path's ~0.5 s, which is what unclogs the SweepService
// cold path. Results are bit-identical to EvalStrategy::kFused (and
// therefore to the external kernel): the lowering never enables
// fast-math or FP contraction, and libm calls resolve to this very
// process's libm.
//
// OrcBatchModel mirrors codegen::NativeBatchModel exactly: a
// BatchCompiledModel whose step() drives the JITed kernel over the same
// strided slot file, slotting into make_shard / fallback-shard /
// quarantine / warm-pool machinery unchanged. One materialized program
// serves any number of shards and threads concurrently — the kernel is a
// pure function of the slot file.
//
// Built with AMSVP_WITH_LLVM=OFF, orc_available() is false and compile()
// returns nullptr with an explanatory error; the external-compiler path
// (native_batch.hpp) remains the no-LLVM native fallback.
//
// Fault site "jit.orc_materialize" (support/fault.hpp) models a
// materialization failure so tests can exercise the graceful fallback to
// the interpreter shard.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "runtime/batch_model.hpp"

namespace amsvp::codegen {

/// True when the in-process ORC backend can compile at all (built with
/// LLVM). Cheap; no host probing involved.
[[nodiscard]] bool orc_available();

namespace orc_detail {

/// Process-wide count of ORC compile attempts (lower + optimize +
/// materialize; an injected jit.orc_materialize fault counts as the
/// attempt it models). Warm-path guarantees — "a repeat sweep of a cached
/// model runs zero JIT compiles" — are asserted as a zero delta of this
/// counter, the ORC twin of detail::compile_invocations().
[[nodiscard]] std::uint64_t orc_compile_invocations();

}  // namespace orc_detail

/// The shared, immutable compile artifact of the ORC path: a materialized
/// LLJIT instance plus the two resolved entry points and the layout the
/// IR was lowered against. Thread-safe after construction — the kernels
/// touch only caller-provided memory.
class OrcJitProgram {
public:
    /// Lower, optimize and materialize the kernels for `model`. Returns
    /// nullptr (with `error` set) when built without LLVM, or when
    /// lowering/verification/materialization fails.
    [[nodiscard]] static std::shared_ptr<const OrcJitProgram> compile(
        const abstraction::SignalFlowModel& model, std::string* error = nullptr);

    /// Same, over an already-compiled (kFused) layout — cache holders
    /// (runtime::ModelCache) skip the redundant FusedCompiler re-run; the
    /// IR is lowered against exactly this layout's slot assignment.
    [[nodiscard]] static std::shared_ptr<const OrcJitProgram> compile(
        std::shared_ptr<const runtime::ModelLayout> layout, std::string* error = nullptr);

    ~OrcJitProgram();
    OrcJitProgram(const OrcJitProgram&) = delete;
    OrcJitProgram& operator=(const OrcJitProgram&) = delete;

    /// Step one instance: the scalar entry point over a contiguous
    /// layout()->slot_count() slot file (caller writes inputs and the
    /// $abstime slot first; history rotates inside).
    void step(double* slots) const { step_fn_(slots); }

    /// Step `batch` lanes of a strided slot file — same contract as
    /// NativeBatchProgram::step_batch.
    void step_batch(double* slots, int batch) const { step_batch_fn_(slots, batch); }

    [[nodiscard]] const std::shared_ptr<const runtime::ModelLayout>& layout() const {
        return layout_;
    }

private:
    OrcJitProgram() = default;

    using StepFn = void (*)(double*);
    using StepBatchFn = void (*)(double*, int);

    class Engine;  ///< owns the LLJIT (and with it the JITed code)
    std::unique_ptr<Engine> engine_;
    StepFn step_fn_ = nullptr;
    StepBatchFn step_batch_fn_ = nullptr;
    std::shared_ptr<const runtime::ModelLayout> layout_;
};

/// A BatchCompiledModel stepped by the ORC-JITed kernel — the ORC twin of
/// NativeBatchModel, inheriting the whole slot-file API unchanged.
class OrcBatchModel final : public runtime::BatchCompiledModel {
public:
    /// Convenience: compile the kernels and batch them. Returns nullptr
    /// (with `error` set) when the ORC backend is unavailable or fails.
    [[nodiscard]] static std::unique_ptr<OrcBatchModel> compile(
        const abstraction::SignalFlowModel& model, int batch, std::string* error = nullptr);

    /// `batch` lanes over an already-materialized program (shards share one).
    OrcBatchModel(std::shared_ptr<const OrcJitProgram> program, int batch);

    void step(double time_seconds) override;

    /// A fresh ORC batch over the same materialized program.
    [[nodiscard]] std::unique_ptr<runtime::BatchExecutor> make_shard(
        int lane_count) const override;

    /// Degraded-mode shard: a fused *interpreter* batch over the same
    /// layout — bit-identical results, no JIT artifact involved.
    [[nodiscard]] std::unique_ptr<runtime::BatchExecutor> make_fallback_shard(
        int lane_count) const override;

    [[nodiscard]] const std::shared_ptr<const OrcJitProgram>& program() const {
        return program_;
    }

private:
    std::shared_ptr<const OrcJitProgram> program_;
};

}  // namespace amsvp::codegen
