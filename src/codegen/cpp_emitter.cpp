#include "codegen/codegen.hpp"
#include "codegen/emit_common.hpp"
#include "support/strings.hpp"

namespace amsvp::codegen {

using detail::EmitPlan;

namespace {

/// The batched entry point (CodegenOptions::batch_kernel): `batch`
/// instances in one padded strided slot file (slot i of lane l at
/// s[i * S + l] with S = batch rounded up to whole 4-double vector rows —
/// the runtime::LaneLayout / BatchCompiledModel layout, fused scratch rows
/// included; padding lanes are never read or written). One statement per
/// fused instruction with an inner lane loop over the live lanes, pinned
/// widths 1/4/8/16/32 dispatched exactly like FusedProgram::execute_batch,
/// so native sweeps match the batch interpreter bit-for-bit lane by lane.
/// The caller owns the slot file: inputs and the $abstime row are written
/// before each call, outputs read from their slot rows after it.
std::string emit_step_batch(const EmitPlan& plan) {
    const std::string& name = plan.type_name;
    std::string out;
    out += "\n// Batched entry point: steps `batch` instances stored in one padded\n";
    out += "// strided slot file (slot i of lane l at s[i * S + l], S = batch rounded\n";
    out += "// up to whole 4-double vector rows; " +
           std::to_string(plan.total_slot_count) + " slots per lane,\n";
    out += "// scratch included). The caller writes input slots and the $abstime row\n";
    out += "// (slot " + std::to_string(plan.time_slot) +
           ") before each call; history rotates in here.\n";
    out += "inline constexpr int " + name + "_batch_slot_count = " +
           std::to_string(plan.total_slot_count) + ";\n";
    out += "\ntemplate <int kStaticBatch>\n";
    out += "inline void " + name + "_step_batch_impl(double* s, int batch) {\n";
    out += "    const int B = kStaticBatch > 0 ? kStaticBatch : batch;\n";
    out += "    // Padded slot-row stride (runtime::LaneLayout::padded_width). Pinned\n";
    out += "    // widths loop exactly their lane count; dynamic widths loop whole\n";
    out += "    // padded rows — the ghost lanes compute as throwaway instances, so\n";
    out += "    // there is no scalar tail and odd widths cost their row-multiple\n";
    out += "    // neighbour's step.\n";
    out += "    const int S = kStaticBatch > 0 ? ((kStaticBatch + 3) & ~3) : ((batch + 3) & ~3);\n";
    out += "    const int L = kStaticBatch > 0 ? B : S;\n";
    out += "    (void)batch;\n";
    for (const std::string& stmt : plan.batch_statements) {
        out += "    " + stmt + "\n";
    }
    if (!plan.batch_rotations.empty()) {
        out += "    // History rotation, deepest first.\n";
        for (const std::string& stmt : plan.batch_rotations) {
            out += "    " + stmt + "\n";
        }
    }
    out += "}\n";
    out += "\n// Pinned lane counts for the common sweep widths (straight-line SIMD\n";
    out += "// instead of a runtime-trip-count loop), dynamic fallback otherwise —\n";
    out += "// the same dispatch the batch interpreter uses.\n";
    out += "inline void " + name + "_step_batch(double* s, int batch) {\n";
    out += "    switch (batch) {\n";
    for (const int width : {1, 4, 8, 16, 32}) {
        const std::string w = std::to_string(width);
        out += "        case " + w + ": " + name + "_step_batch_impl<" + w + ">(s, " + w +
               "); return;\n";
    }
    out += "        default: " + name + "_step_batch_impl<0>(s, batch); return;\n";
    out += "    }\n";
    out += "}\n";
    return out;
}

}  // namespace

// Plain C++ target (Fig. 7b of the paper): a dependency-free struct whose
// step() evaluates the fused signal-flow program once and rotates the
// history. The statements are the fused register-machine instructions —
// scratch registers become step()-locals, pooled constants inline as
// literals — so the generated arithmetic is exactly what the in-process
// interpreter executes.
std::string emit_cpp(const abstraction::SignalFlowModel& model, const CodegenOptions& options) {
    const EmitPlan plan = detail::build_plan(model, options);
    std::string out;
    if (options.header_comment) {
        out += detail::provenance_comment(model, "C++");
    }
    out += "#pragma once\n";
    out += "\n";
    out += "#include <algorithm>\n";
    out += "#include <cmath>\n";
    out += "\n";
    out += "struct " + plan.type_name + " {\n";
    out += "    static constexpr double dt = " + support::format_double(plan.timestep) +
           ";  // seconds\n";
    if (!plan.inputs.empty()) {
        out += "\n    // Inputs: set before each step() call.\n";
        for (const std::string& in : plan.inputs) {
            out += "    double " + in + " = 0;\n";
        }
    }
    if (!plan.states.empty()) {
        out += "\n    // State variables and their history.\n";
        for (const auto& s : plan.states) {
            if (!s.is_input) {  // inputs are already declared above
                out += "    double " + s.id + " = " + support::format_double(s.initial) +
                       ";\n";
            }
            for (int k = 1; k <= s.depth; ++k) {
                out += "    double " + detail::history_name(s.id, k) + " = " +
                       support::format_double(s.initial) + ";\n";
            }
        }
    }
    if (!plan.plain_members.empty()) {
        out += "\n    // Intermediate quantities.\n";
        for (const std::string& m : plan.plain_members) {
            out += "    double " + m + " = 0;\n";
        }
    }
    if (plan.uses_time) {
        out += "\n    double _abstime = 0;  // $abstime\n";
    }
    out += "\n    // Evaluate one timestep at absolute time t (seconds).\n";
    out += "    void step(double t) {\n";
    out += plan.uses_time ? "        _abstime = t;\n" : "        (void)t;\n";
    for (const std::string& decl : plan.scratch_locals) {
        out += "        " + decl + "\n";
    }
    for (const std::string& stmt : plan.assignments) {
        out += "        " + stmt + "\n";
    }
    if (!plan.rotations.empty()) {
        out += "        // History rotation.\n";
        for (const std::string& stmt : plan.rotations) {
            out += "        " + stmt + "\n";
        }
    }
    out += "    }\n";
    if (!plan.outputs.empty()) {
        out += "\n    // Outputs of interest.\n";
        for (std::size_t i = 0; i < plan.outputs.size(); ++i) {
            out += "    double output" + std::to_string(i) + "() const { return " +
                   plan.outputs[i] + "; }\n";
        }
    }
    if (options.slot_accessor) {
        out += "\n    // Model slot file (runtime ModelLayout order) — differential hook.\n";
        out += "    static constexpr int slot_count = " +
               std::to_string(plan.slot_names.size()) + ";\n";
        out += "    double slot_value(int i) const {\n";
        out += detail::slot_accessor_body(plan, "        ");
        out += "    }\n";
    }
    out += "};\n";
    if (options.batch_kernel) {
        out += emit_step_batch(plan);
    }
    return out;
}

}  // namespace amsvp::codegen
