#include "codegen/codegen.hpp"
#include "codegen/emit_common.hpp"
#include "support/strings.hpp"

namespace amsvp::codegen {

using detail::ModelLayout;

// Plain C++ target (Fig. 7b of the paper): a dependency-free struct whose
// step() evaluates the signal-flow program once and rotates the history.
std::string emit_cpp(const abstraction::SignalFlowModel& model, const CodegenOptions& options) {
    const ModelLayout layout = detail::build_layout(model, options.type_name);
    std::string out;
    if (options.header_comment) {
        out += detail::provenance_comment(model, "C++");
    }
    out += "#pragma once\n";
    out += "\n";
    out += "#include <algorithm>\n";
    out += "#include <cmath>\n";
    out += "\n";
    out += "struct " + layout.type_name + " {\n";
    out += "    static constexpr double dt = " + support::format_double(layout.timestep) +
           ";  // seconds\n";
    if (!layout.inputs.empty()) {
        out += "\n    // Inputs: set before each step() call.\n";
        for (const std::string& in : layout.inputs) {
            out += "    double " + in + " = 0;\n";
        }
    }
    if (!layout.states.empty()) {
        out += "\n    // State variables and their history.\n";
        for (const auto& s : layout.states) {
            out += "    double " + s.id + " = " + support::format_double(s.initial) + ";\n";
            for (int k = 1; k <= s.depth; ++k) {
                out += "    double " + detail::history_name(s.id, k) + " = " +
                       support::format_double(s.initial) + ";\n";
            }
        }
    }
    if (!layout.plain_members.empty()) {
        out += "\n    // Intermediate quantities.\n";
        for (const std::string& m : layout.plain_members) {
            out += "    double " + m + " = 0;\n";
        }
    }
    if (layout.uses_time) {
        out += "\n    double _abstime = 0;  // $abstime\n";
    }
    out += "\n    // Evaluate one timestep at absolute time t (seconds).\n";
    out += "    void step(double t) {\n";
    out += layout.uses_time ? "        _abstime = t;\n" : "        (void)t;\n";
    for (const std::string& stmt : layout.assignments) {
        out += "        " + stmt + "\n";
    }
    if (!layout.rotations.empty()) {
        out += "        // History rotation.\n";
        for (const std::string& stmt : layout.rotations) {
            out += "        " + stmt + "\n";
        }
    }
    out += "    }\n";
    if (!layout.outputs.empty()) {
        out += "\n    // Outputs of interest.\n";
        for (std::size_t i = 0; i < layout.outputs.size(); ++i) {
            out += "    double output" + std::to_string(i) + "() const { return " +
                   layout.outputs[i] + "; }\n";
        }
    }
    out += "};\n";
    return out;
}

}  // namespace amsvp::codegen
