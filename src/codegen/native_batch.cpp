#include "codegen/native_batch.hpp"

#include "codegen/codegen.hpp"
#include "support/check.hpp"

namespace amsvp::codegen {

namespace {

/// The generated struct + step_batch kernel plus the C ABI the loader
/// binds to. Unlike the scalar wrapper there is no global model instance:
/// the kernel is a pure function of the caller's slot file.
std::string wrapper_source(const abstraction::SignalFlowModel& model,
                           std::shared_ptr<const runtime::ModelLayout> layout) {
    CodegenOptions options;
    options.type_name = "amsvp_native_model";
    options.batch_kernel = true;
    options.layout = std::move(layout);
    std::string src = emit_cpp(model, options);
    src += "\nextern \"C\" void amsvp_step_batch(double* slots, int batch) {\n";
    src += "    amsvp_native_model_step_batch(slots, batch);\n";
    src += "}\n";
    src += "\nextern \"C\" int amsvp_batch_slot_count() {\n";
    src += "    return amsvp_native_model_batch_slot_count;\n";
    src += "}\n";
    return src;
}

}  // namespace

std::shared_ptr<const NativeBatchProgram> NativeBatchProgram::compile(
    const abstraction::SignalFlowModel& model, std::string* error,
    const detail::JitOptions& jit) {
    // One fused compile serves both sides: the emitter renders this
    // layout's slot indices and the executing batch allocates its slot
    // file from the same object.
    return compile(model, runtime::ModelLayout::compile(model, runtime::EvalStrategy::kFused),
                   error, jit);
}

std::shared_ptr<const NativeBatchProgram> NativeBatchProgram::compile(
    const abstraction::SignalFlowModel& model,
    std::shared_ptr<const runtime::ModelLayout> layout, std::string* error,
    const detail::JitOptions& jit) {
    auto library = detail::JitLibrary::compile(
        wrapper_source(model, layout), {"amsvp_step_batch", "amsvp_batch_slot_count"},
        error, jit);
    if (library == nullptr) {
        return nullptr;
    }
    auto program = std::shared_ptr<NativeBatchProgram>(new NativeBatchProgram());
    program->step_batch_fn_ = reinterpret_cast<StepBatchFn>(library->symbols()[0]);
    const auto slot_count_fn = reinterpret_cast<int (*)()>(library->symbols()[1]);
    program->library_ = std::move(library);
    program->layout_ = std::move(layout);
    // Load-time sanity guard: the loaded kernel's emitted slot count must
    // be this layout's — a mismatch means the wrong .so got bound.
    if (slot_count_fn() != static_cast<int>(program->layout_->slot_count())) {
        if (error != nullptr) {
            *error = "generated batch kernel disagrees with the runtime layout (" +
                     std::to_string(slot_count_fn()) + " vs " +
                     std::to_string(program->layout_->slot_count()) + " slots per lane)";
        }
        return nullptr;
    }
    return program;
}

NativeBatchModel::NativeBatchModel(std::shared_ptr<const NativeBatchProgram> program,
                                   int batch)
    : BatchCompiledModel(program->layout(), batch), program_(std::move(program)) {}

std::unique_ptr<NativeBatchModel> NativeBatchModel::compile(
    const abstraction::SignalFlowModel& model, int batch, std::string* error,
    const detail::JitOptions& jit) {
    auto program = NativeBatchProgram::compile(model, error, jit);
    if (program == nullptr) {
        return nullptr;
    }
    return std::make_unique<NativeBatchModel>(std::move(program), batch);
}

void NativeBatchModel::step(double time_seconds) {
    double* slots = slot_data();
    const int lanes = batch();
    double* time_lane = slot_row(layout()->time_slot());
    // Padded row: the kernel computes the ghost lanes too.
    const int padded = runtime::LaneLayout::padded_width(lanes);
    for (int l = 0; l < padded; ++l) {
        time_lane[l] = time_seconds;
    }
    program_->step_batch(slots, lanes);
}

std::unique_ptr<runtime::BatchExecutor> NativeBatchModel::make_shard(int lane_count) const {
    return std::make_unique<NativeBatchModel>(program_, lane_count);
}

std::unique_ptr<runtime::BatchExecutor> NativeBatchModel::make_fallback_shard(
    int lane_count) const {
    // The base class builds a fused interpreter batch over the same layout:
    // no JIT artifact involved, results bit-identical to the kernel.
    return BatchCompiledModel::make_shard(lane_count);
}

}  // namespace amsvp::codegen
