#include "codegen/codegen.hpp"

#include "support/check.hpp"
#include "support/strings.hpp"

namespace amsvp::codegen {

std::string_view to_string(Target target) {
    switch (target) {
        case Target::kCpp:
            return "C++";
        case Target::kSystemCDe:
            return "SystemC-DE";
        case Target::kSystemCAmsTdf:
            return "SystemC-AMS/TDF";
    }
    return "unknown";
}

std::string default_type_name(const abstraction::SignalFlowModel& model) {
    std::string out = support::to_lower(model.name);
    for (char& c : out) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
        if (!ok) {
            c = '_';
        }
    }
    if (out.empty()) {
        out = "model";
    }
    if (out[0] >= '0' && out[0] <= '9') {
        out.insert(out.begin(), 'm');
    }
    return out + "_model";
}

std::string generate(const abstraction::SignalFlowModel& model, Target target,
                     const CodegenOptions& options) {
    switch (target) {
        case Target::kCpp:
            return emit_cpp(model, options);
        case Target::kSystemCDe:
            return emit_systemc_de(model, options);
        case Target::kSystemCAmsTdf:
            return emit_systemc_tdf(model, options);
    }
    AMSVP_CHECK(false, "unknown codegen target");
    return {};
}

}  // namespace amsvp::codegen
