// Batched native execution: the whole sweep engine running as dlopen'ed
// machine code.
//
// The C++ emitter renders a `step_batch(double* slots, int batch)` entry
// point beside the scalar struct (CodegenOptions::batch_kernel): the same
// fused instruction stream, one inner lane loop per instruction over the
// strided BatchCompiledModel slot file, pinned widths 1/4/8/16/32
// dispatched exactly like FusedProgram::execute_batch. NativeBatchProgram
// compiles and loads that kernel once per model; NativeBatchModel is a
// BatchCompiledModel whose step() drives the native kernel instead of the
// interpreter — same slot file, same reset / set_input / set_value /
// compact_lanes semantics, bit-identical results lane for lane (both sides
// build with -ffp-contract=off).
//
// The kernel is a pure function of the slot file — no per-instance globals
// in the shared object — so one dlopen'ed program serves any number of
// shards concurrently: a worker-pool simulate_sweep with
// SweepOptions::backend == kNative steps every shard through the same
// machine code.
#pragma once

#include <memory>
#include <string>

#include "codegen/native_jit.hpp"
#include "runtime/batch_model.hpp"

namespace amsvp::codegen {

/// The shared, immutable compile artifact of the native batch path: the
/// dlopen'ed step_batch kernel plus the runtime layout it was emitted
/// against. Thread-safe — the kernel touches only caller-provided memory.
class NativeBatchProgram {
public:
    /// Emit, compile and load the batch kernel for `model`. Returns nullptr
    /// (with `error` set) when no compiler is available, compilation fails
    /// (after detail::JitOptions::attempts guarded tries), or the generated
    /// kernel disagrees with the runtime layout.
    [[nodiscard]] static std::shared_ptr<const NativeBatchProgram> compile(
        const abstraction::SignalFlowModel& model, std::string* error = nullptr,
        const detail::JitOptions& jit = {});

    /// Same, over an already-compiled (kFused) layout of `model` — callers
    /// holding a cached ModelLayout (runtime::ModelCache, the sweep
    /// service) skip the redundant FusedCompiler re-run; the kernel is
    /// emitted against exactly this layout's slot assignment.
    [[nodiscard]] static std::shared_ptr<const NativeBatchProgram> compile(
        const abstraction::SignalFlowModel& model,
        std::shared_ptr<const runtime::ModelLayout> layout, std::string* error = nullptr,
        const detail::JitOptions& jit = {});

    /// Step `batch` lanes of a strided slot file (layout()->slot_count()
    /// rows). The caller writes inputs and the $abstime row first; history
    /// rotates inside the kernel.
    void step_batch(double* slots, int batch) const { step_batch_fn_(slots, batch); }

    [[nodiscard]] const std::shared_ptr<const runtime::ModelLayout>& layout() const {
        return layout_;
    }

private:
    NativeBatchProgram() = default;

    using StepBatchFn = void (*)(double*, int);

    std::unique_ptr<detail::JitLibrary> library_;
    StepBatchFn step_batch_fn_ = nullptr;
    std::shared_ptr<const runtime::ModelLayout> layout_;
};

/// A BatchCompiledModel stepped by the native kernel: the slot-file API —
/// reset, set_input, set_value, output_lanes, compact_lanes, shard_lanes —
/// is inherited unchanged; only step() differs. Odd widths (including
/// batches narrowed mid-sweep by steady-state compaction) go through the
/// kernel's dynamic-width path, mirroring the interpreter.
class NativeBatchModel final : public runtime::BatchCompiledModel {
public:
    /// Convenience: compile the kernel and batch it. Returns nullptr (with
    /// `error` set) when native compilation is unavailable or fails.
    [[nodiscard]] static std::unique_ptr<NativeBatchModel> compile(
        const abstraction::SignalFlowModel& model, int batch, std::string* error = nullptr,
        const detail::JitOptions& jit = {});

    /// `batch` lanes over an already-compiled kernel (shards share one).
    NativeBatchModel(std::shared_ptr<const NativeBatchProgram> program, int batch);

    void step(double time_seconds) override;

    /// A fresh native batch over the same dlopen'ed kernel.
    [[nodiscard]] std::unique_ptr<runtime::BatchExecutor> make_shard(
        int lane_count) const override;

    /// Degraded-mode shard: a fused *interpreter* batch over the same
    /// layout — no dependency on the dlopen'ed artifact, bit-identical
    /// results (the native kernel's acceptance bar), just slower. The sweep
    /// driver switches one shard to this when shard construction fails
    /// mid-sweep rather than failing the whole job.
    [[nodiscard]] std::unique_ptr<runtime::BatchExecutor> make_fallback_shard(
        int lane_count) const override;

    [[nodiscard]] const std::shared_ptr<const NativeBatchProgram>& program() const {
        return program_;
    }

private:
    std::shared_ptr<const NativeBatchProgram> program_;
};

}  // namespace amsvp::codegen
