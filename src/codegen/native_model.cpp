#include "codegen/native_model.hpp"

#include <dlfcn.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "codegen/codegen.hpp"
#include "runtime/compiled_model.hpp"
#include "support/check.hpp"

namespace amsvp::codegen {

namespace {

std::string unique_stem() {
    static std::atomic<int> counter{0};
    return "/tmp/amsvp_native_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter.fetch_add(1));
}

/// The generated struct plus a C ABI wrapper the loader binds to.
std::string wrapper_source(const abstraction::SignalFlowModel& model) {
    CodegenOptions options;
    options.type_name = "amsvp_native_model";
    options.slot_accessor = true;
    std::string src = emit_cpp(model, options);
    src += "\nnamespace { amsvp_native_model g_model; }\n";
    src += "\nextern \"C\" void amsvp_reset() { g_model = amsvp_native_model(); }\n";
    src += "\nextern \"C\" void amsvp_step(const double* inputs, double t, double* outputs) {\n";
    for (std::size_t i = 0; i < model.inputs.size(); ++i) {
        src += "    g_model." + model.inputs[i].identifier() + " = inputs[" +
               std::to_string(i) + "];\n";
    }
    src += "    g_model.step(t);\n";
    for (std::size_t i = 0; i < model.outputs.size(); ++i) {
        src += "    outputs[" + std::to_string(i) + "] = g_model.output" + std::to_string(i) +
               "();\n";
    }
    src += "}\n";
    src += "\nextern \"C\" double amsvp_slot(int i) { return g_model.slot_value(i); }\n";
    src += "\nextern \"C\" int amsvp_slot_count() { return amsvp_native_model::slot_count; }\n";
    return src;
}

}  // namespace

bool native_compilation_available() {
    static const bool available = [] {
        return std::system("c++ --version > /dev/null 2>&1") == 0;
    }();
    return available;
}

std::unique_ptr<NativeModel> NativeModel::compile(const abstraction::SignalFlowModel& model,
                                                  std::string* error) {
    if (!native_compilation_available()) {
        if (error != nullptr) {
            *error = "no C++ compiler available on PATH";
        }
        return nullptr;
    }
    const std::string stem = unique_stem();
    const std::string src_path = stem + ".cpp";
    const std::string so_path = stem + ".so";
    {
        std::ofstream out(src_path);
        if (!out) {
            if (error != nullptr) {
                *error = "cannot write " + src_path;
            }
            return nullptr;
        }
        out << wrapper_source(model);
    }
    // -ffp-contract=off keeps the native arithmetic bit-identical to the
    // in-process interpreters (each operation rounds separately; the amsvp
    // library itself builds with the same flag).
    const std::string cmd = "c++ -std=c++17 -O2 -ffp-contract=off -shared -fPIC -o " +
                            so_path + " " + src_path + " 2> " + stem + ".log";
    if (std::system(cmd.c_str()) != 0) {
        if (error != nullptr) {
            *error = "compilation of generated model failed (see " + stem + ".log)";
        }
        std::remove(src_path.c_str());
        return nullptr;
    }

    void* handle = ::dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (handle == nullptr) {
        if (error != nullptr) {
            *error = std::string("dlopen failed: ") + ::dlerror();
        }
        std::remove(src_path.c_str());
        std::remove(so_path.c_str());
        return nullptr;
    }

    auto native = std::unique_ptr<NativeModel>(new NativeModel());
    native->handle_ = handle;
    native->reset_fn_ = reinterpret_cast<ResetFn>(::dlsym(handle, "amsvp_reset"));
    native->step_fn_ = reinterpret_cast<StepFn>(::dlsym(handle, "amsvp_step"));
    native->slot_fn_ = reinterpret_cast<SlotFn>(::dlsym(handle, "amsvp_slot"));
    native->slot_count_fn_ =
        reinterpret_cast<SlotCountFn>(::dlsym(handle, "amsvp_slot_count"));
    if (native->reset_fn_ == nullptr || native->step_fn_ == nullptr ||
        native->slot_fn_ == nullptr || native->slot_count_fn_ == nullptr) {
        if (error != nullptr) {
            *error = "generated shared object lacks the expected entry points";
        }
        return nullptr;  // destructor cleans up
    }
    native->inputs_.assign(model.inputs.size(), 0.0);
    native->outputs_.assign(model.outputs.size(), 0.0);
    native->timestep_ = model.timestep;
    native->so_path_ = so_path;
    std::remove(src_path.c_str());
    std::remove((stem + ".log").c_str());
    native->reset();
    return native;
}

NativeModel::~NativeModel() {
    if (handle_ != nullptr) {
        ::dlclose(handle_);
    }
    if (!so_path_.empty()) {
        std::remove(so_path_.c_str());
    }
}

runtime::ExecutorFactory native_executor_factory() {
    return [](const abstraction::SignalFlowModel& model)
               -> std::unique_ptr<runtime::ModelExecutor> {
        std::string error;
        if (auto native = NativeModel::compile(model, &error)) {
            return native;
        }
        static bool warned = false;
        if (!warned) {
            warned = true;
            std::fprintf(stderr,
                         "amsvp: native model execution unavailable (%s); "
                         "falling back to the bytecode interpreter\n",
                         error.c_str());
        }
        return std::make_unique<runtime::CompiledModel>(model);
    };
}

}  // namespace amsvp::codegen
