#include "codegen/native_model.hpp"

#include <atomic>
#include <cstdio>

#include "codegen/codegen.hpp"
#include "runtime/compiled_model.hpp"
#include "support/check.hpp"

namespace amsvp::codegen {

namespace {

/// The generated struct plus a C ABI wrapper the loader binds to.
std::string wrapper_source(const abstraction::SignalFlowModel& model) {
    CodegenOptions options;
    options.type_name = "amsvp_native_model";
    options.slot_accessor = true;
    std::string src = emit_cpp(model, options);
    src += "\nnamespace { amsvp_native_model g_model; }\n";
    src += "\nextern \"C\" void amsvp_reset() { g_model = amsvp_native_model(); }\n";
    src += "\n// Current output values without stepping — the loader refreshes its\n";
    src += "// cached outputs after a reset so reads before the next step see the\n";
    src += "// re-initialized model, like the interpreter does.\n";
    src += "extern \"C\" void amsvp_outputs(double* outputs) {\n";
    for (std::size_t i = 0; i < model.outputs.size(); ++i) {
        src += "    outputs[" + std::to_string(i) + "] = g_model.output" + std::to_string(i) +
               "();\n";
    }
    src += "}\n";
    src += "\nextern \"C\" void amsvp_step(const double* inputs, double t, double* outputs) {\n";
    for (std::size_t i = 0; i < model.inputs.size(); ++i) {
        src += "    g_model." + model.inputs[i].identifier() + " = inputs[" +
               std::to_string(i) + "];\n";
    }
    src += "    g_model.step(t);\n";
    src += "    amsvp_outputs(outputs);\n";
    src += "}\n";
    src += "\nextern \"C\" double amsvp_slot(int i) { return g_model.slot_value(i); }\n";
    src += "\nextern \"C\" int amsvp_slot_count() { return amsvp_native_model::slot_count; }\n";
    return src;
}

}  // namespace

bool native_compilation_available() {
    return detail::jit_available();
}

std::unique_ptr<NativeModel> NativeModel::compile(const abstraction::SignalFlowModel& model,
                                                  std::string* error) {
    auto library = detail::JitLibrary::compile(
        wrapper_source(model),
        {"amsvp_reset", "amsvp_step", "amsvp_outputs", "amsvp_slot", "amsvp_slot_count"},
        error);
    if (library == nullptr) {
        return nullptr;
    }
    auto native = std::unique_ptr<NativeModel>(new NativeModel());
    native->reset_fn_ = reinterpret_cast<ResetFn>(library->symbols()[0]);
    native->step_fn_ = reinterpret_cast<StepFn>(library->symbols()[1]);
    native->outputs_fn_ = reinterpret_cast<OutputsFn>(library->symbols()[2]);
    native->slot_fn_ = reinterpret_cast<SlotFn>(library->symbols()[3]);
    native->slot_count_fn_ = reinterpret_cast<SlotCountFn>(library->symbols()[4]);
    native->library_ = std::move(library);
    native->inputs_.assign(model.inputs.size(), 0.0);
    native->outputs_.assign(model.outputs.size(), 0.0);
    native->timestep_ = model.timestep;
    native->reset();
    return native;
}

NativeModel::~NativeModel() = default;

runtime::ExecutorFactory native_executor_factory() {
    return [](const abstraction::SignalFlowModel& model)
               -> std::unique_ptr<runtime::ModelExecutor> {
        std::string error;
        if (auto native = NativeModel::compile(model, &error)) {
            return native;
        }
        // atomic: executor factories run from worker threads too.
        static std::atomic<bool> warned{false};
        if (!warned.exchange(true)) {
            std::fprintf(stderr,
                         "amsvp: native model execution unavailable (%s); "
                         "falling back to the bytecode interpreter\n",
                         error.c_str());
        }
        return std::make_unique<runtime::CompiledModel>(model);
    };
}

}  // namespace amsvp::codegen
