#include "codegen/native_jit.hpp"

#include <dlfcn.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>

namespace amsvp::codegen::detail {

namespace {

/// Owns every temp path of one compile attempt until success: any early
/// return removes whatever still stands. release() hands a path over (the
/// .so transfers into the JitLibrary; the .log survives a compiler error).
class TempFileGuard {
public:
    ~TempFileGuard() {
        for (const std::string& path : paths_) {
            if (!path.empty()) {
                std::remove(path.c_str());
            }
        }
    }

    std::size_t add(std::string path) {
        paths_.push_back(std::move(path));
        return paths_.size() - 1;
    }

    /// Stop owning paths_[index]; returns it.
    std::string release(std::size_t index) {
        std::string path = std::move(paths_[index]);
        paths_[index].clear();
        return path;
    }

private:
    std::vector<std::string> paths_;
};

}  // namespace

std::string unique_stem() {
    static std::atomic<int> counter{0};
    // Read $TMPDIR on every call (not cached): tests redirect it to verify
    // the temp-file lifecycle, and respecting the live environment is what
    // the variable means.
    const char* tmpdir = std::getenv("TMPDIR");
    std::string dir = (tmpdir != nullptr && tmpdir[0] != '\0') ? tmpdir : "/tmp";
    if (dir.back() == '/') {
        dir.pop_back();
    }
    return dir + "/amsvp_native_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter.fetch_add(1));
}

std::string shell_quote(const std::string& path) {
    std::string quoted = "'";
    for (const char c : path) {
        if (c == '\'') {
            quoted += "'\\''";
        } else {
            quoted += c;
        }
    }
    quoted += "'";
    return quoted;
}

bool jit_available() {
    static const bool available = [] {
        return std::system("c++ --version > /dev/null 2>&1") == 0;
    }();
    return available;
}

std::unique_ptr<JitLibrary> JitLibrary::compile(
    const std::string& source, const std::vector<const char*>& required_symbols,
    std::string* error) {
    if (!jit_available()) {
        if (error != nullptr) {
            *error = "no C++ compiler available on PATH";
        }
        return nullptr;
    }
    const std::string stem = unique_stem();
    TempFileGuard guard;
    const std::size_t src_index = guard.add(stem + ".cpp");
    const std::size_t so_index = guard.add(stem + ".so");
    const std::size_t log_index = guard.add(stem + ".log");
    const std::string src_path = stem + ".cpp";
    const std::string so_path = stem + ".so";
    {
        std::ofstream out(src_path);
        if (!out) {
            if (error != nullptr) {
                *error = "cannot write " + src_path;
            }
            return nullptr;
        }
        out << source;
    }
    // -ffp-contract=off keeps the native arithmetic bit-identical to the
    // in-process interpreters (each operation rounds separately; the amsvp
    // library itself builds with the same flag).
    const std::string cmd = "c++ -std=c++17 -O2 -ffp-contract=off -shared -fPIC -o " +
                            shell_quote(so_path) + " " + shell_quote(src_path) + " 2> " +
                            shell_quote(stem + ".log");
    if (std::system(cmd.c_str()) != 0) {
        if (error != nullptr) {
            *error = "compilation of generated model failed (see " + stem + ".log)";
        }
        guard.release(log_index);  // the error message references it
        return nullptr;
    }

    void* handle = ::dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (handle == nullptr) {
        if (error != nullptr) {
            *error = std::string("dlopen failed: ") + ::dlerror();
        }
        return nullptr;
    }

    std::vector<void*> symbols;
    symbols.reserve(required_symbols.size());
    for (const char* name : required_symbols) {
        void* address = ::dlsym(handle, name);
        if (address == nullptr) {
            if (error != nullptr) {
                *error = std::string("generated shared object lacks entry point ") + name;
            }
            ::dlclose(handle);
            return nullptr;
        }
        symbols.push_back(address);
    }

    auto library = std::unique_ptr<JitLibrary>(new JitLibrary());
    library->handle_ = handle;
    library->so_path_ = guard.release(so_index);  // owned until ~JitLibrary now
    library->symbols_ = std::move(symbols);
    return library;
}

JitLibrary::~JitLibrary() {
    if (handle_ != nullptr) {
        ::dlclose(handle_);
    }
    if (!so_path_.empty()) {
        std::remove(so_path_.c_str());
    }
}

}  // namespace amsvp::codegen::detail
