#include "codegen/native_jit.hpp"

#include <dlfcn.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <thread>

#include "support/fault.hpp"

namespace amsvp::codegen::detail {

namespace {

std::atomic<std::uint64_t> g_compile_invocations{0};

}  // namespace

std::uint64_t compile_invocations() {
    return g_compile_invocations.load(std::memory_order_relaxed);
}

namespace {

/// Owns every temp path of one compile attempt until success: any early
/// return removes whatever still stands. release() hands a path over (the
/// .so transfers into the JitLibrary; the .log survives a compiler error).
/// keep_everything() turns the destructor into a no-op (JitOptions::
/// keep_temps — failed artifacts stay inspectable).
class TempFileGuard {
public:
    ~TempFileGuard() {
        if (keep_) {
            return;
        }
        for (const std::string& path : paths_) {
            if (!path.empty()) {
                std::remove(path.c_str());
            }
        }
    }

    std::size_t add(std::string path) {
        paths_.push_back(std::move(path));
        return paths_.size() - 1;
    }

    /// Stop owning paths_[index]; returns it.
    std::string release(std::size_t index) {
        std::string path = std::move(paths_[index]);
        paths_[index].clear();
        return path;
    }

    void keep_everything() { keep_ = true; }

private:
    std::vector<std::string> paths_;
    bool keep_ = false;
};

/// First `limit` bytes of `path` (the compiler log), trimmed of a trailing
/// newline, with a truncation marker when the file goes on.
std::string read_head(const std::string& path, std::size_t limit) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        return {};
    }
    std::string head(limit, '\0');
    in.read(head.data(), static_cast<std::streamsize>(limit));
    head.resize(static_cast<std::size_t>(in.gcount()));
    const bool truncated = in.peek() != std::ifstream::traits_type::eof();
    while (!head.empty() && (head.back() == '\n' || head.back() == '\r')) {
        head.pop_back();
    }
    if (truncated) {
        head += "\n[... log truncated ...]";
    }
    return head;
}

}  // namespace

std::string unique_stem() {
    static std::atomic<int> counter{0};
    // Read $TMPDIR on every call (not cached): tests redirect it to verify
    // the temp-file lifecycle, and respecting the live environment is what
    // the variable means.
    const char* tmpdir = std::getenv("TMPDIR");
    std::string dir = (tmpdir != nullptr && tmpdir[0] != '\0') ? tmpdir : "/tmp";
    if (dir.back() == '/') {
        dir.pop_back();
    }
    return dir + "/amsvp_native_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter.fetch_add(1));
}

std::string shell_quote(const std::string& path) {
    std::string quoted = "'";
    for (const char c : path) {
        if (c == '\'') {
            quoted += "'\\''";
        } else {
            quoted += c;
        }
    }
    quoted += "'";
    return quoted;
}

bool jit_available() {
    static const bool available = [] {
        return run_guarded_command("c++ --version > /dev/null 2>&1", 30000).exit_code == 0;
    }();
    return available;
}

CommandResult run_guarded_command(const std::string& command, int timeout_ms) {
    CommandResult result;
    const pid_t pid = ::fork();
    if (pid < 0) {
        return result;  // fork failed: exit_code stays -1, retryable
    }
    if (pid == 0) {
        // Child: own process group, so a timeout kill reaches the compiler
        // driver *and* everything it spawned (cc1plus, as, ld).
        ::setpgid(0, 0);
        ::execl("/bin/sh", "sh", "-c", command.c_str(), static_cast<char*>(nullptr));
        ::_exit(127);
    }
    // Parent mirrors the setpgid so the group exists whichever side runs
    // first; EACCES/ESRCH just mean the child got there already (or exec'd).
    ::setpgid(pid, pid);

    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms > 0 ? timeout_ms : 0);
    int poll_us = 200;  // grows to 20 ms: sub-ms latency for fast commands
    for (;;) {
        int status = 0;
        const pid_t waited = ::waitpid(pid, &status, WNOHANG);
        if (waited == pid) {
            if (WIFEXITED(status)) {
                result.exit_code = WEXITSTATUS(status);
            }
            return result;  // signalled child: exit_code stays -1
        }
        if (waited < 0 && errno != EINTR) {
            return result;
        }
        if (timeout_ms > 0 && std::chrono::steady_clock::now() >= deadline) {
            ::kill(-pid, SIGKILL);
            ::waitpid(pid, &status, 0);
            result.timed_out = true;
            return result;
        }
        std::this_thread::sleep_for(std::chrono::microseconds(poll_us));
        poll_us = std::min(poll_us * 2, 20000);
    }
}

std::unique_ptr<JitLibrary> JitLibrary::compile_once(
    const std::string& source, const std::vector<const char*>& required_symbols,
    std::string* error, const JitOptions& options, bool keep_failure_log) {
    const std::string stem = unique_stem();
    TempFileGuard guard;
    if (options.keep_temps) {
        guard.keep_everything();
    }
    guard.add(stem + ".cpp");
    const std::size_t so_index = guard.add(stem + ".so");
    const std::size_t log_index = guard.add(stem + ".log");
    const std::string src_path = stem + ".cpp";
    const std::string so_path = stem + ".so";
    const std::string log_path = stem + ".log";
    {
        std::ofstream out(src_path);
        if (!out) {
            if (error != nullptr) {
                *error = "cannot write " + src_path;
            }
            return nullptr;
        }
        out << source;
    }
    // -ffp-contract=off keeps the native arithmetic bit-identical to the
    // in-process interpreters (each operation rounds separately; the amsvp
    // library itself builds with the same flag).
    const std::string cmd = "c++ -std=c++17 -O2 -ffp-contract=off -shared -fPIC -o " +
                            shell_quote(so_path) + " " + shell_quote(src_path) + " 2> " +
                            shell_quote(log_path);
    CommandResult compiled;
    g_compile_invocations.fetch_add(1, std::memory_order_relaxed);
    if (support::fault::should_fire("jit.compile")) {
        std::ofstream(log_path) << "injected fault: jit.compile\n";
        compiled.exit_code = 1;
    } else {
        compiled = run_guarded_command(cmd, options.timeout_ms);
    }
    if (compiled.timed_out) {
        if (error != nullptr) {
            *error = "compilation of generated model timed out after " +
                     std::to_string(options.timeout_ms) + " ms";
        }
        return nullptr;
    }
    if (compiled.exit_code != 0) {
        if (error != nullptr) {
            *error = "compilation of generated model failed (exit " +
                     std::to_string(compiled.exit_code) + ", log: " + log_path + ")";
            const std::string stderr_head = read_head(log_path, 2048);
            if (!stderr_head.empty()) {
                *error += "\ncompiler stderr:\n" + stderr_head;
            }
            if (options.keep_temps) {
                *error += "\ngenerated source kept at " + src_path;
            }
        }
        if (keep_failure_log) {
            guard.release(log_index);  // the final error message references it
        }
        return nullptr;
    }

    void* handle = nullptr;
    if (support::fault::should_fire("jit.dlopen")) {
        if (error != nullptr) {
            *error = "dlopen failed: injected fault: jit.dlopen";
        }
        return nullptr;
    }
    handle = ::dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (handle == nullptr) {
        if (error != nullptr) {
            *error = std::string("dlopen failed: ") + ::dlerror();
        }
        return nullptr;
    }

    std::vector<void*> symbols;
    symbols.reserve(required_symbols.size());
    for (const char* name : required_symbols) {
        void* address =
            support::fault::should_fire("jit.dlsym") ? nullptr : ::dlsym(handle, name);
        if (address == nullptr) {
            if (error != nullptr) {
                *error = std::string("generated shared object lacks entry point ") + name;
            }
            ::dlclose(handle);
            return nullptr;
        }
        symbols.push_back(address);
    }

    auto library = std::unique_ptr<JitLibrary>(new JitLibrary());
    library->handle_ = handle;
    library->so_path_ = guard.release(so_index);  // owned until ~JitLibrary now
    library->keep_so_ = options.keep_temps;
    library->symbols_ = std::move(symbols);
    return library;
}

std::unique_ptr<JitLibrary> JitLibrary::compile(
    const std::string& source, const std::vector<const char*>& required_symbols,
    std::string* error, const JitOptions& options) {
    if (!jit_available()) {
        if (error != nullptr) {
            *error = "no C++ compiler available on PATH";
        }
        return nullptr;
    }
    const int attempts = options.attempts < 1 ? 1 : options.attempts;
    std::string last_error;
    for (int attempt = 0; attempt < attempts; ++attempt) {
        if (attempt > 0 && options.backoff_ms > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(options.backoff_ms << (attempt - 1)));
        }
        if (auto library = compile_once(source, required_symbols, &last_error, options,
                                        /*keep_failure_log=*/attempt == attempts - 1)) {
            return library;
        }
    }
    if (error != nullptr) {
        *error = attempts > 1
                     ? last_error + " (after " + std::to_string(attempts) + " attempts)"
                     : last_error;
    }
    return nullptr;
}

JitLibrary::~JitLibrary() {
    if (handle_ != nullptr) {
        ::dlclose(handle_);
    }
    if (!so_path_.empty() && !keep_so_) {
        std::remove(so_path_.c_str());
    }
}

}  // namespace amsvp::codegen::detail
