// FusedProgram -> LLVM IR lowering (the front half of the in-process ORC
// JIT backend in orc_jit.hpp).
//
// The fused instruction stream is already a flat three-address IR over a
// strided slot file, so lowering is a 1:1 translation: every FusedOp —
// including the mul-add / immediate superinstructions and kLinComb —
// becomes the exact same arithmetic the interpreter executes, wrapped in
// an explicit lane loop (annotated for vectorization) for the batched
// entry point. Two functions are emitted per model:
//
//   void amsvp_orc_step(double* slots)             — one instance
//   void amsvp_orc_step_batch(double* slots, int batch)
//
// Both write nothing but the slot file, execute the program, then rotate
// history rows (llvm.memcpy, deepest row first) exactly like
// BatchCompiledModel::step — the caller writes inputs and the $abstime row
// first, as with the external-compiler kernel.
//
// Bit-exactness contract (the acceptance bar is bit-for-bit equality with
// EvalStrategy::kFused): no fast-math flags anywhere, no `contract` flags
// (the in-IR analogue of the -ffp-contract=off both the interpreter and
// the external kernel build with — LLVM only forms FMAs when the flags
// allow it), libm calls (exp/log/log10/sin/cos/tan/pow) emitted as plain
// declared calls marked nobuiltin so the pass pipeline cannot substitute
// approximations, and ORC resolves them against this process's own libm —
// the very functions the interpreter calls. sqrt and fabs lower to the
// IEEE-exact llvm intrinsics; min/max/comparisons/select reproduce the
// interpreter's exact predicate forms (including NaN behavior).
//
// This header is LLVM-free: when the library is built without LLVM
// (AMSVP_WITH_LLVM=OFF) the implementations degrade to "unavailable"
// stubs and the external-compiler path stays the native backend.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "runtime/model_layout.hpp"

namespace amsvp::codegen {

/// True when the library was built against LLVM (AMSVP_WITH_LLVM=ON) and
/// the in-process lowering/JIT path exists at all.
[[nodiscard]] bool llvm_backend_available();

/// Human-readable LLVM version the library was built against ("14.0.6"),
/// or "none" without LLVM (tool banners, diagnostics).
[[nodiscard]] std::string llvm_backend_version();

/// IR text of one lowered model, before and after the fixed pass
/// pipeline — the debugging surface behind `codegen_tool --backend orc`.
struct LoweredIrText {
    std::string unoptimized;  ///< straight out of the lowering pass
    std::string optimized;    ///< after the fixed pass pipeline
};

/// Lower `layout`'s fused program and run the pass pipeline, returning
/// both IR printouts. Returns nullopt with `error` set when built without
/// LLVM or when lowering/verification fails.
[[nodiscard]] std::optional<LoweredIrText> lower_to_ir_text(
    const std::shared_ptr<const runtime::ModelLayout>& layout, std::string* error = nullptr);

}  // namespace amsvp::codegen
