// Internal helpers shared by the three emitters. Not part of the public API.
//
// Since the FusedProgram became the single mid-level IR, the emitters no
// longer walk the raw expression trees: build_plan() compiles the model
// through runtime::ModelLayout (kFused) and renders the optimized
// instruction stream as target-neutral C++ statements. Generated code
// therefore carries every optimization the interpreter has — constant
// folding, cross-assignment CSE, immediate/multiply-add superinstructions
// and kLinComb FMA chains — and, statement for statement, performs exactly
// the arithmetic the fused interpreter performs (each operation rounds
// separately; builds use -ffp-contract=off on both sides), so generated
// models and EvalStrategy::kFused are differentially comparable
// bit-for-bit, slot-for-slot.
#pragma once

#include <string>
#include <vector>

#include "abstraction/signal_flow_model.hpp"

namespace amsvp::codegen {
struct CodegenOptions;
}  // namespace amsvp::codegen

namespace amsvp::codegen::detail {

/// Pre-rendered pieces of a model, ready for any textual target.
struct EmitPlan {
    std::string type_name;
    double timestep = 0.0;
    std::vector<std::string> inputs;  ///< input identifiers, model order

    struct StateVar {
        std::string id;
        int depth;       ///< history slots: id_prev .. id_prev<depth>
        double initial;  ///< initial value for all history slots
        /// The current value is a model input (delayed-input reference):
        /// the input declaration already provides it, so emitters must
        /// only declare the history members.
        bool is_input = false;
    };
    /// Every assigned or input symbol that is referenced with a delay.
    std::vector<StateVar> states;

    /// Scratch-register declarations opening the step body ("double _t0 = 0;").
    /// The fused compiler's liveness pass already compacted these onto a
    /// small recycled pool, so the local frame stays register-resident.
    std::vector<std::string> scratch_locals;
    /// One statement per fused instruction, in program order. Model slots
    /// render as named variables, pooled constants as literals, scratch
    /// registers as the locals above; kLinComb renders as one FMA chain.
    std::vector<std::string> assignments;
    /// History rotation statements, deepest first.
    std::vector<std::string> rotations;
    /// Non-state assignment targets that still need member declarations.
    std::vector<std::string> plain_members;
    std::vector<std::string> outputs;  ///< output identifiers
    bool uses_time = false;

    /// Model slot index -> variable name, dense over the runtime layout's
    /// model_slot_count() prefix ($abstime renders as "_abstime"). Drives
    /// the optional slot_value() accessor used for slot-for-slot
    /// differentials against the in-process runtime.
    std::vector<std::string> slot_names;

    /// Slots one instance occupies in the strided batch slot file: model
    /// slots plus fused scratch (== runtime ModelLayout::slot_count()).
    int total_slot_count = 0;
    /// Slot of $abstime (the batch kernel's caller writes the time row).
    int time_slot = -1;
    /// Batched form of the program, filled only when
    /// CodegenOptions::batch_kernel is set: one `for (int l = 0; l < L;
    /// ++l) ...` statement per fused instruction over a padded strided slot
    /// file `double* s` with runtime::LaneLayout row stride `S` (slot i of
    /// lane l at s[i * S + l]); L is the lane count for pinned widths and
    /// the whole padded row for dynamic ones (ghost lanes compute as
    /// throwaway instances, never observed).
    /// Scratch registers address their strided slot-file rows, pooled
    /// constants inline as literals — the per-lane arithmetic is exactly
    /// the scalar statement stream's.
    std::vector<std::string> batch_statements;
    /// Strided history rotation loops, deepest first per symbol.
    std::vector<std::string> batch_rotations;
};

[[nodiscard]] EmitPlan build_plan(const abstraction::SignalFlowModel& model,
                                  const CodegenOptions& options);

/// "name_prev" / "name_prev2" — matches the kCpp expression printer.
[[nodiscard]] std::string history_name(const std::string& id, int delay);

/// Provenance header comment shared by all targets.
[[nodiscard]] std::string provenance_comment(const abstraction::SignalFlowModel& model,
                                             std::string_view target_name);

/// The slot_value(int) switch body over `slot_names` (shared by the plain
/// C++ emitter and the native wrapper).
[[nodiscard]] std::string slot_accessor_body(const EmitPlan& plan, std::string_view indent);

}  // namespace amsvp::codegen::detail
