// Internal helpers shared by the three emitters. Not part of the public API.
#pragma once

#include <string>
#include <vector>

#include "abstraction/signal_flow_model.hpp"

namespace amsvp::codegen::detail {

/// Pre-rendered pieces of a model, ready for any textual target.
struct ModelLayout {
    std::string type_name;
    double timestep = 0.0;
    std::vector<std::string> inputs;  ///< input identifiers, model order

    struct StateVar {
        std::string id;
        int depth;       ///< history slots: id_prev .. id_prev<depth>
        double initial;  ///< initial value for all history slots
    };
    /// Every assigned or input symbol that is referenced with a delay.
    std::vector<StateVar> states;

    /// Assignment statements in evaluation order: "V_C1 = <expr>;".
    std::vector<std::string> assignments;
    /// History rotation statements, deepest first.
    std::vector<std::string> rotations;
    /// Non-state assignment targets that still need member declarations.
    std::vector<std::string> plain_members;
    std::vector<std::string> outputs;  ///< output identifiers
    bool uses_time = false;
};

[[nodiscard]] ModelLayout build_layout(const abstraction::SignalFlowModel& model,
                                       const std::string& requested_type_name);

/// "name_prev" / "name_prev2" — matches the kCpp expression printer.
[[nodiscard]] std::string history_name(const std::string& id, int delay);

/// Provenance header comment shared by all targets.
[[nodiscard]] std::string provenance_comment(const abstraction::SignalFlowModel& model,
                                             std::string_view target_name);

}  // namespace amsvp::codegen::detail
