// Native execution of generated models: emit the plain-C++ form (Step 4),
// compile it with the system compiler into a shared object, and load it via
// dlopen. This is precisely the deployment path the paper measures in its
// "C++" rows — the generated code runs as machine code, with no interpreter
// or simulation kernel in the loop.
#pragma once

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "codegen/native_jit.hpp"
#include "runtime/executor.hpp"

namespace amsvp::codegen {

class NativeModel final : public runtime::ModelExecutor {
public:
    /// Generate, compile and load. Returns nullptr (with `error` set) when
    /// no compiler is available or compilation fails.
    [[nodiscard]] static std::unique_ptr<NativeModel> compile(
        const abstraction::SignalFlowModel& model, std::string* error = nullptr);

    ~NativeModel() override;
    NativeModel(const NativeModel&) = delete;
    NativeModel& operator=(const NativeModel&) = delete;

    /// Reset the generated model to its initial values, matching
    /// CompiledModel::reset() observably: the cached input vector is
    /// cleared (the interpreter zeroes input slots, so the next step must
    /// not re-apply stale inputs) and the cached outputs are refreshed
    /// from the re-initialized model (so output() before the next step
    /// reads initial values, not the last pre-reset step).
    void reset() override {
        reset_fn_();
        std::fill(inputs_.begin(), inputs_.end(), 0.0);
        outputs_fn_(outputs_.data());
    }
    void set_input(std::size_t index, double value) override { inputs_.at(index) = value; }
    void step(double time_seconds) override {
        step_fn_(inputs_.data(), time_seconds, outputs_.data());
    }
    [[nodiscard]] double output(std::size_t index) const override {
        return outputs_.at(index);
    }
    [[nodiscard]] std::size_t input_count() const override { return inputs_.size(); }
    [[nodiscard]] std::size_t output_count() const override { return outputs_.size(); }
    [[nodiscard]] double timestep() const override { return timestep_; }

    /// Model slots of the generated code (== runtime ModelLayout's
    /// model_slot_count() for the same model): generated models expose
    /// their slot file so tests can compare them against the fused
    /// interpreter slot-for-slot.
    [[nodiscard]] int model_slot_count() const { return slot_count_fn_(); }
    /// Value of model slot `i` (runtime ModelLayout slot order).
    [[nodiscard]] double slot_value(int i) const { return slot_fn_(i); }

private:
    NativeModel() = default;

    using ResetFn = void (*)();
    using StepFn = void (*)(const double*, double, double*);
    using OutputsFn = void (*)(double*);
    using SlotFn = double (*)(int);
    using SlotCountFn = int (*)();

    std::unique_ptr<detail::JitLibrary> library_;
    ResetFn reset_fn_ = nullptr;
    StepFn step_fn_ = nullptr;
    OutputsFn outputs_fn_ = nullptr;
    SlotFn slot_fn_ = nullptr;
    SlotCountFn slot_count_fn_ = nullptr;
    std::vector<double> inputs_;
    std::vector<double> outputs_;
    double timestep_ = 0.0;
};

/// True when a usable `c++` compiler is on PATH (cached after first call).
[[nodiscard]] bool native_compilation_available();

/// Executor factory: native when a compiler is available, bytecode fallback
/// otherwise (a note is printed once on fallback).
[[nodiscard]] runtime::ExecutorFactory native_executor_factory();

}  // namespace amsvp::codegen
