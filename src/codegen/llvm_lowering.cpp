#include "codegen/llvm_lowering.hpp"

#ifdef AMSVP_HAS_LLVM

#include <functional>
#include <mutex>

#include <llvm/ExecutionEngine/Orc/JITTargetMachineBuilder.h>
#include <llvm/IR/BasicBlock.h>
#include <llvm/IR/Constants.h>
#include <llvm/IR/DerivedTypes.h>
#include <llvm/IR/Function.h>
#include <llvm/IR/IRBuilder.h>
#include <llvm/IR/Intrinsics.h>
#include <llvm/IR/MDBuilder.h>
#include <llvm/IR/Verifier.h>
#include <llvm/Passes/PassBuilder.h>
#include <llvm/Support/Error.h>
#include <llvm/Support/TargetSelect.h>
#include <llvm/Support/raw_ostream.h>
#include <llvm/Target/TargetMachine.h>

#include "codegen/llvm_lowering_internal.hpp"
#include "support/check.hpp"

namespace amsvp::codegen {

namespace orc_detail {

void ensure_native_target() {
    static std::once_flag once;
    std::call_once(once, [] {
        llvm::InitializeNativeTarget();
        llvm::InitializeNativeTargetAsmPrinter();
        llvm::InitializeNativeTargetAsmParser();
    });
}

namespace {

/// Emits one step function (scalar or batched) into the module. All the
/// bit-exactness rules live here: the builder never receives fast-math
/// flags, multiplies and adds stay separate instructions (no llvm.fmuladd,
/// no `contract`), and every libm call is nobuiltin so the pass pipeline
/// cannot swap in a differently-rounded replacement.
class StepFunctionLowering {
public:
    StepFunctionLowering(llvm::Module& module, const runtime::ModelLayout& layout,
                         bool scalar)
        : ctx_(module.getContext()),
          module_(module),
          layout_(layout),
          scalar_(scalar),
          builder_(module.getContext()),
          f64_(llvm::Type::getDoubleTy(ctx_)),
          i64_(llvm::Type::getInt64Ty(ctx_)) {}

    void run() {
        llvm::SmallVector<llvm::Type*, 2> params{llvm::PointerType::getUnqual(f64_)};
        if (!scalar_) {
            params.push_back(llvm::Type::getInt32Ty(ctx_));
        }
        auto* fn_type = llvm::FunctionType::get(llvm::Type::getVoidTy(ctx_), params,
                                                /*isVarArg=*/false);
        fn_ = llvm::Function::Create(fn_type, llvm::Function::ExternalLinkage,
                                     scalar_ ? kStepSymbol : kStepBatchSymbol, module_);
        fn_->addFnAttr(llvm::Attribute::NoUnwind);
        // Belt and braces beside the per-call nobuiltin: no pass may treat
        // any call inside these bodies as a recognized library routine.
        fn_->addFnAttr("no-builtins");
        fn_->addParamAttr(0, llvm::Attribute::NoAlias);
        fn_->addParamAttr(0, llvm::Attribute::NoCapture);
        slots_ = fn_->getArg(0);
        slots_->setName("slots");

        builder_.SetInsertPoint(llvm::BasicBlock::Create(ctx_, "entry", fn_));
        if (scalar_) {
            batch64_ = llvm::ConstantInt::get(i64_, 1);
        } else {
            llvm::Argument* batch = fn_->getArg(1);
            batch->setName("batch");
            batch64_ = builder_.CreateSExt(batch, i64_, "batch64");
        }

        const expr::FusedProgram& program = layout_.fused_program();
        for (const expr::FusedInstr& instr : program.instructions()) {
            emit_lane_loop([&](llvm::Value* lane) { emit_instruction(instr, lane); });
        }
        emit_history_rotations();
        builder_.CreateRetVoid();
    }

private:
    [[nodiscard]] llvm::Value* slot_addr(std::int64_t slot, llvm::Value* lane) {
        llvm::Value* row =
            builder_.CreateMul(llvm::ConstantInt::get(i64_, slot), batch64_);
        return builder_.CreateInBoundsGEP(f64_, slots_, builder_.CreateAdd(row, lane));
    }

    [[nodiscard]] llvm::Value* load_slot(std::int64_t slot, llvm::Value* lane) {
        return builder_.CreateLoad(f64_, slot_addr(slot, lane));
    }

    void store_slot(std::int64_t slot, llvm::Value* lane, llvm::Value* value) {
        builder_.CreateStore(value, slot_addr(slot, lane));
    }

    [[nodiscard]] llvm::Constant* fp(double value) {
        return llvm::ConstantFP::get(f64_, value);
    }

    /// C++'s `cond ? 1.0 : 0.0` over an i1.
    [[nodiscard]] llvm::Value* as_double(llvm::Value* cond) {
        return builder_.CreateSelect(cond, fp(1.0), fp(0.0));
    }

    /// `value != 0.0` — C++ truthiness, true for NaN (une).
    [[nodiscard]] llvm::Value* truthy(llvm::Value* value) {
        return builder_.CreateFCmpUNE(value, fp(0.0));
    }

    /// Declared-only libm call, nobuiltin at the call site: the symbol
    /// resolves to this process's own libm, the exact functions the fused
    /// interpreter calls through <cmath>.
    [[nodiscard]] llvm::Value* call_libm(llvm::StringRef name,
                                         llvm::ArrayRef<llvm::Value*> args) {
        llvm::SmallVector<llvm::Type*, 2> params(args.size(), f64_);
        llvm::FunctionCallee callee = module_.getOrInsertFunction(
            name, llvm::FunctionType::get(f64_, params, /*isVarArg=*/false));
        if (auto* decl = llvm::dyn_cast<llvm::Function>(callee.getCallee())) {
            decl->setDoesNotThrow();
        }
        llvm::CallInst* call = builder_.CreateCall(callee, args);
        call->addFnAttr(llvm::Attribute::NoBuiltin);
        return call;
    }

    [[nodiscard]] llvm::Value* call_intrinsic(llvm::Intrinsic::ID id, llvm::Value* arg) {
        return builder_.CreateUnaryIntrinsic(id, arg);
    }

    /// One `for (lane = 0; lane < batch; ++lane)` loop around `body`,
    /// annotated llvm.loop.vectorize.enable; the scalar function inlines
    /// the body at lane 0 instead. `body` must stay straight-line (every
    /// FusedOp lowers to loads, arithmetic and selects — no new blocks).
    void emit_lane_loop(const std::function<void(llvm::Value*)>& body) {
        if (scalar_) {
            body(llvm::ConstantInt::get(i64_, 0));
            return;
        }
        llvm::BasicBlock* preheader = builder_.GetInsertBlock();
        auto* header = llvm::BasicBlock::Create(ctx_, "lane.head", fn_);
        auto* body_bb = llvm::BasicBlock::Create(ctx_, "lane.body", fn_);
        auto* exit = llvm::BasicBlock::Create(ctx_, "lane.exit", fn_);
        builder_.CreateBr(header);

        builder_.SetInsertPoint(header);
        llvm::PHINode* lane = builder_.CreatePHI(i64_, 2, "lane");
        lane->addIncoming(llvm::ConstantInt::get(i64_, 0), preheader);
        builder_.CreateCondBr(builder_.CreateICmpSLT(lane, batch64_), body_bb, exit);

        builder_.SetInsertPoint(body_bb);
        body(lane);
        llvm::Value* next = builder_.CreateAdd(lane, llvm::ConstantInt::get(i64_, 1));
        lane->addIncoming(next, builder_.GetInsertBlock());
        llvm::BranchInst* latch = builder_.CreateBr(header);
        latch->setMetadata(llvm::LLVMContext::MD_loop, loop_metadata());

        builder_.SetInsertPoint(exit);
    }

    /// A fresh self-referential loop-ID node per loop, carrying
    /// llvm.loop.vectorize.enable.
    [[nodiscard]] llvm::MDNode* loop_metadata() {
        llvm::Metadata* enable_ops[] = {
            llvm::MDString::get(ctx_, "llvm.loop.vectorize.enable"),
            llvm::ConstantAsMetadata::get(
                llvm::ConstantInt::getTrue(llvm::Type::getInt1Ty(ctx_)))};
        llvm::TempMDTuple temp = llvm::MDNode::getTemporary(ctx_, llvm::None);
        llvm::Metadata* ops[] = {temp.get(), llvm::MDNode::get(ctx_, enable_ops)};
        llvm::MDNode* id = llvm::MDNode::get(ctx_, ops);
        id->replaceOperandWith(0, id);
        return id;
    }

    /// The per-lane arithmetic of one fused instruction — the exact IR
    /// image of FusedProgram::execute_impl's switch.
    void emit_instruction(const expr::FusedInstr& instr, llvm::Value* lane) {
        using expr::FusedOp;
        auto a = [&] { return load_slot(instr.a, lane); };
        auto bb = [&] { return load_slot(instr.b, lane); };
        auto c = [&] { return load_slot(instr.c, lane); };
        llvm::IRBuilder<>& b = builder_;
        llvm::Value* result = nullptr;
        switch (instr.op) {
            case FusedOp::kConst:
                result = fp(instr.imm);
                break;
            case FusedOp::kCopy:
                result = a();
                break;
            case FusedOp::kNeg:
                result = b.CreateFNeg(a());
                break;
            case FusedOp::kNot:
                // s[a] == 0.0 ? 1.0 : 0.0 — ordered ==, false for NaN.
                result = as_double(b.CreateFCmpOEQ(a(), fp(0.0)));
                break;
            case FusedOp::kExp:
                result = call_libm("exp", {a()});
                break;
            case FusedOp::kLn:
                result = call_libm("log", {a()});
                break;
            case FusedOp::kLog10:
                result = call_libm("log10", {a()});
                break;
            case FusedOp::kSqrt:
                // IEEE-exact intrinsic, same rounding as libm sqrt.
                result = call_intrinsic(llvm::Intrinsic::sqrt, a());
                break;
            case FusedOp::kSin:
                result = call_libm("sin", {a()});
                break;
            case FusedOp::kCos:
                result = call_libm("cos", {a()});
                break;
            case FusedOp::kTan:
                result = call_libm("tan", {a()});
                break;
            case FusedOp::kAbs:
                result = call_intrinsic(llvm::Intrinsic::fabs, a());
                break;
            case FusedOp::kAdd:
                result = b.CreateFAdd(a(), bb());
                break;
            case FusedOp::kSub:
                result = b.CreateFSub(a(), bb());
                break;
            case FusedOp::kMul:
                result = b.CreateFMul(a(), bb());
                break;
            case FusedOp::kDiv:
                result = b.CreateFDiv(a(), bb());
                break;
            case FusedOp::kPow:
                result = call_libm("pow", {a(), bb()});
                break;
            case FusedOp::kMin: {
                // std::min(a, b) == (b < a) ? b : a — a survives a NaN b.
                llvm::Value* va = a();
                llvm::Value* vb = bb();
                result = b.CreateSelect(b.CreateFCmpOLT(vb, va), vb, va);
                break;
            }
            case FusedOp::kMax: {
                // std::max(a, b) == (a < b) ? b : a.
                llvm::Value* va = a();
                llvm::Value* vb = bb();
                result = b.CreateSelect(b.CreateFCmpOLT(va, vb), vb, va);
                break;
            }
            case FusedOp::kLt:
                result = as_double(b.CreateFCmpOLT(a(), bb()));
                break;
            case FusedOp::kLe:
                result = as_double(b.CreateFCmpOLE(a(), bb()));
                break;
            case FusedOp::kGt:
                result = as_double(b.CreateFCmpOGT(a(), bb()));
                break;
            case FusedOp::kGe:
                result = as_double(b.CreateFCmpOGE(a(), bb()));
                break;
            case FusedOp::kEq:
                result = as_double(b.CreateFCmpOEQ(a(), bb()));
                break;
            case FusedOp::kNe:
                // C++ != is true for unordered operands: une, not one.
                result = as_double(b.CreateFCmpUNE(a(), bb()));
                break;
            case FusedOp::kAnd:
                result = as_double(b.CreateAnd(truthy(a()), truthy(bb())));
                break;
            case FusedOp::kOr:
                result = as_double(b.CreateOr(truthy(a()), truthy(bb())));
                break;
            case FusedOp::kAddImm:
                result = b.CreateFAdd(a(), fp(instr.imm));
                break;
            case FusedOp::kSubImm:
                result = b.CreateFSub(a(), fp(instr.imm));
                break;
            case FusedOp::kRSubImm:
                result = b.CreateFSub(fp(instr.imm), a());
                break;
            case FusedOp::kMulImm:
                result = b.CreateFMul(a(), fp(instr.imm));
                break;
            case FusedOp::kDivImm:
                result = b.CreateFDiv(a(), fp(instr.imm));
                break;
            case FusedOp::kRDivImm:
                result = b.CreateFDiv(fp(instr.imm), a());
                break;
            case FusedOp::kMulAdd:
                // Two roundings, like the interpreter: fmul then fadd with
                // no contract flag, so no FMA can be formed.
                result = b.CreateFAdd(b.CreateFMul(a(), bb()), c());
                break;
            case FusedOp::kMulSub:
                result = b.CreateFSub(b.CreateFMul(a(), bb()), c());
                break;
            case FusedOp::kMulRSub:
                result = b.CreateFSub(c(), b.CreateFMul(a(), bb()));
                break;
            case FusedOp::kMulAddImm:
                result = b.CreateFAdd(b.CreateFMul(a(), fp(instr.imm)), bb());
                break;
            case FusedOp::kSelect:
                result = b.CreateSelect(truthy(a()), bb(), c());
                break;
            case FusedOp::kLinComb: {
                // acc = imm; acc += coeff_k * term_k, terms in order — the
                // interpreter's left-associated sequential accumulation,
                // unrolled (term count and coefficients are compile-time
                // constants of the model).
                const std::vector<expr::LinTerm>& terms = layout_.fused_program().lin_terms();
                llvm::Value* acc = fp(instr.imm);
                for (std::int32_t k = 0; k < instr.b; ++k) {
                    const expr::LinTerm& term =
                        terms[static_cast<std::size_t>(instr.a + k)];
                    llvm::Value* src = load_slot(term.slot, lane);
                    acc = b.CreateFAdd(acc, b.CreateFMul(fp(term.coeff), src));
                }
                result = acc;
                break;
            }
        }
        AMSVP_CHECK(result != nullptr, "unlowered fused opcode");
        store_slot(instr.dst, lane, result);
    }

    /// Rotate history rows after the program, deepest row first — the IR
    /// image of BatchCompiledModel::step's memcpy loop (and the external
    /// kernel's): row (base+k) <- row (base+k-1), batch doubles each.
    void emit_history_rotations() {
        llvm::Value* row_bytes =
            builder_.CreateMul(batch64_, llvm::ConstantInt::get(i64_, sizeof(double)));
        llvm::Value* lane0 = llvm::ConstantInt::get(i64_, 0);
        for (const runtime::ModelLayout::SymbolSlots& rotation : layout_.rotations()) {
            for (int k = rotation.depth; k >= 1; --k) {
                llvm::Value* dst = slot_addr(rotation.base + k, lane0);
                llvm::Value* src = slot_addr(rotation.base + k - 1, lane0);
                builder_.CreateMemCpy(dst, llvm::MaybeAlign(alignof(double)), src,
                                      llvm::MaybeAlign(alignof(double)), row_bytes);
            }
        }
    }

    llvm::LLVMContext& ctx_;
    llvm::Module& module_;
    const runtime::ModelLayout& layout_;
    const bool scalar_;
    llvm::IRBuilder<> builder_;
    llvm::Type* f64_;
    llvm::Type* i64_;
    llvm::Function* fn_ = nullptr;
    llvm::Value* slots_ = nullptr;
    llvm::Value* batch64_ = nullptr;
};

}  // namespace

LoweredModule lower_model(const runtime::ModelLayout& layout) {
    AMSVP_CHECK(layout.strategy() == runtime::EvalStrategy::kFused,
                "ORC lowering needs a kFused layout");
    LoweredModule lowered;
    lowered.context = std::make_unique<llvm::LLVMContext>();
    lowered.module = std::make_unique<llvm::Module>("amsvp_orc", *lowered.context);
    StepFunctionLowering(*lowered.module, layout, /*scalar=*/true).run();
    StepFunctionLowering(*lowered.module, layout, /*scalar=*/false).run();
    return lowered;
}

void run_opt_pipeline(llvm::Module& module, llvm::TargetMachine* tm) {
    llvm::LoopAnalysisManager lam;
    llvm::FunctionAnalysisManager fam;
    llvm::CGSCCAnalysisManager cgam;
    llvm::ModuleAnalysisManager mam;
    llvm::PassBuilder pb(tm);
    pb.registerModuleAnalyses(mam);
    pb.registerCGSCCAnalyses(cgam);
    pb.registerFunctionAnalyses(fam);
    pb.registerLoopAnalyses(lam);
    pb.crossRegisterProxies(lam, fam, cgam, mam);
    llvm::ModulePassManager mpm;
    // early-cse shares the repeated slot loads, loop-rotate puts the lane
    // loop into the bottom-tested form the vectorizer wants, loop-vectorize
    // honors the llvm.loop.vectorize.enable annotation, and the trailing
    // instcombine/simplifycfg clean up the vector bodies. This is the
    // subset of O2 that pays for itself on straight-line step kernels —
    // the full default<O2> pipeline costs ~4x the walltime here for no
    // measurable steady-state gain. None of these passes contract FP (the
    // lowering emits no `contract`/`fast` flags for them to act on).
    const char* pipeline =
        "function(early-cse<memssa>,instcombine,loop-mssa(loop-rotate),"
        "loop-vectorize,instcombine,simplifycfg)";
    if (llvm::Error err = pb.parsePassPipeline(mpm, pipeline)) {
        // Unreachable with a healthy LLVM, but a typo in the string must
        // degrade to a working (if slower) compile, not a lost kernel.
        llvm::consumeError(std::move(err));
        mpm = pb.buildPerModuleDefaultPipeline(llvm::OptimizationLevel::O2);
    }
    mpm.run(module, mam);
}

std::string module_to_string(const llvm::Module& module) {
    std::string text;
    llvm::raw_string_ostream stream(text);
    module.print(stream, /*AAW=*/nullptr);
    stream.flush();
    return text;
}

}  // namespace orc_detail

bool llvm_backend_available() { return true; }

std::string llvm_backend_version() { return LLVM_VERSION_STRING; }

std::optional<LoweredIrText> lower_to_ir_text(
    const std::shared_ptr<const runtime::ModelLayout>& layout, std::string* error) {
    orc_detail::ensure_native_target();
    auto jtmb = llvm::orc::JITTargetMachineBuilder::detectHost();
    if (!jtmb) {
        if (error != nullptr) {
            *error = "cannot detect host target: " + llvm::toString(jtmb.takeError());
        }
        return std::nullopt;
    }
    auto tm = jtmb->createTargetMachine();
    if (!tm) {
        if (error != nullptr) {
            *error = "cannot create target machine: " + llvm::toString(tm.takeError());
        }
        return std::nullopt;
    }

    orc_detail::LoweredModule lowered = orc_detail::lower_model(*layout);
    lowered.module->setDataLayout((*tm)->createDataLayout());
    lowered.module->setTargetTriple((*tm)->getTargetTriple().str());

    std::string verify_text;
    llvm::raw_string_ostream verify_stream(verify_text);
    if (llvm::verifyModule(*lowered.module, &verify_stream)) {
        if (error != nullptr) {
            *error = "lowered module failed verification: " + verify_stream.str();
        }
        return std::nullopt;
    }

    LoweredIrText text;
    text.unoptimized = orc_detail::module_to_string(*lowered.module);
    orc_detail::run_opt_pipeline(*lowered.module, tm->get());
    text.optimized = orc_detail::module_to_string(*lowered.module);
    return text;
}

}  // namespace amsvp::codegen

#else  // !AMSVP_HAS_LLVM

namespace amsvp::codegen {

// Built without LLVM: the lowering surface stays linkable so callers can
// probe availability at runtime; the external-compiler path remains the
// native backend.

bool llvm_backend_available() { return false; }

std::string llvm_backend_version() { return "none"; }

std::optional<LoweredIrText> lower_to_ir_text(
    const std::shared_ptr<const runtime::ModelLayout>& /*layout*/, std::string* error) {
    if (error != nullptr) {
        *error = "in-process LLVM backend unavailable: built with AMSVP_WITH_LLVM=OFF";
    }
    return std::nullopt;
}

}  // namespace amsvp::codegen

#endif  // AMSVP_HAS_LLVM
