#include "codegen/llvm_lowering.hpp"

#ifdef AMSVP_HAS_LLVM

#include <functional>
#include <mutex>

#include <llvm/ExecutionEngine/Orc/JITTargetMachineBuilder.h>
#include <llvm/IR/BasicBlock.h>
#include <llvm/IR/Constants.h>
#include <llvm/IR/DerivedTypes.h>
#include <llvm/IR/Function.h>
#include <llvm/IR/IRBuilder.h>
#include <llvm/IR/Intrinsics.h>
#include <llvm/IR/Verifier.h>
#include <llvm/Passes/PassBuilder.h>
#include <llvm/Support/Error.h>
#include <llvm/Support/TargetSelect.h>
#include <llvm/Support/raw_ostream.h>
#include <llvm/Target/TargetMachine.h>

#include "codegen/llvm_lowering_internal.hpp"
#include "runtime/lane_layout.hpp"
#include "support/check.hpp"

namespace amsvp::codegen {

namespace orc_detail {

void ensure_native_target() {
    static std::once_flag once;
    std::call_once(once, [] {
        llvm::InitializeNativeTarget();
        llvm::InitializeNativeTargetAsmPrinter();
        llvm::InitializeNativeTargetAsmParser();
    });
}

namespace {

/// Emits one step function (scalar or batched) into the module. All the
/// bit-exactness rules live here: the builder never receives fast-math
/// flags, multiplies and adds stay separate instructions (no llvm.fmuladd,
/// no `contract`), and every libm call is nobuiltin so the pass pipeline
/// cannot swap in a differently-rounded replacement.
///
/// The batch function is vector-native: it iterates the runtime::LaneLayout
/// rows explicitly — one loop stepping LaneLayout::kVectorRow lanes at a
/// time with every fused instruction lowered to <4 x double> operations —
/// instead of asking the loop vectorizer to rediscover the shape. The loop
/// covers every padded row, ghost lanes included: a non-row-multiple batch
/// computes its padding lanes as throwaway extra instances rather than
/// peeling a scalar tail, so an odd width costs exactly what the next
/// row-multiple width costs (no per-instruction scalar epilogue). Lanes
/// are mutually independent (each lane's slot column, scratch included, is
/// a complete state machine), so running whole rows through the program
/// rather than the whole batch through each instruction permutes only the
/// order in which independent lane results are produced — and ghost-lane
/// results are never observed: every live lane still executes exactly the
/// scalar instruction sequence, bit for bit.
class StepFunctionLowering {
public:
    StepFunctionLowering(llvm::Module& module, const runtime::ModelLayout& layout,
                         bool scalar)
        : ctx_(module.getContext()),
          module_(module),
          layout_(layout),
          scalar_(scalar),
          builder_(module.getContext()),
          f64_(llvm::Type::getDoubleTy(ctx_)),
          i64_(llvm::Type::getInt64Ty(ctx_)),
          vec_ty_(llvm::FixedVectorType::get(
              llvm::Type::getDoubleTy(module.getContext()),
              static_cast<unsigned>(runtime::LaneLayout::kVectorRow))) {}

    void run() {
        llvm::SmallVector<llvm::Type*, 2> params{llvm::PointerType::getUnqual(f64_)};
        if (!scalar_) {
            params.push_back(llvm::Type::getInt32Ty(ctx_));
        }
        auto* fn_type = llvm::FunctionType::get(llvm::Type::getVoidTy(ctx_), params,
                                                /*isVarArg=*/false);
        fn_ = llvm::Function::Create(fn_type, llvm::Function::ExternalLinkage,
                                     scalar_ ? kStepSymbol : kStepBatchSymbol, module_);
        fn_->addFnAttr(llvm::Attribute::NoUnwind);
        // Belt and braces beside the per-call nobuiltin: no pass may treat
        // any call inside these bodies as a recognized library routine.
        fn_->addFnAttr("no-builtins");
        fn_->addParamAttr(0, llvm::Attribute::NoAlias);
        fn_->addParamAttr(0, llvm::Attribute::NoCapture);
        slots_ = fn_->getArg(0);
        slots_->setName("slots");

        builder_.SetInsertPoint(llvm::BasicBlock::Create(ctx_, "entry", fn_));
        const expr::FusedProgram& program = layout_.fused_program();
        if (scalar_) {
            // The scalar step is the batch's lane-0 specialization over a
            // contiguous (stride 1) slot file — no loops at all.
            batch64_ = llvm::ConstantInt::get(i64_, 1);
            stride64_ = batch64_;
            llvm::Value* lane0 = llvm::ConstantInt::get(i64_, 0);
            for (const expr::FusedInstr& instr : program.instructions()) {
                emit_instruction(instr, lane0);
            }
            emit_history_rotations();
            builder_.CreateRetVoid();
            return;
        }

        llvm::Argument* batch = fn_->getArg(1);
        batch->setName("batch");
        batch64_ = builder_.CreateSExt(batch, i64_, "batch64");
        const std::int64_t row = runtime::LaneLayout::kVectorRow;
        // stride = padded_width(batch) — the LaneLayout row arithmetic on
        // power-of-two kVectorRow.
        llvm::Value* row_minus_1 = llvm::ConstantInt::get(i64_, row - 1);
        llvm::Value* row_mask = llvm::ConstantInt::get(i64_, ~(row - 1));
        stride64_ = builder_.CreateAnd(builder_.CreateAdd(batch64_, row_minus_1),
                                       row_mask, "stride64");

        // Every padded row as full vector rows: each instruction is one
        // <kVectorRow x double> operation per row. Ghost lanes ([batch,
        // stride) of the last row) compute alongside the live ones — their
        // results are never observed, and paying one throwaway column beats
        // a per-instruction scalar tail at every non-row-multiple width.
        vector_ = true;
        emit_counted_loop(llvm::ConstantInt::get(i64_, 0), stride64_, row, "row",
                          [&](llvm::Value* lane) {
                              for (const expr::FusedInstr& instr : program.instructions()) {
                                  emit_instruction(instr, lane);
                              }
                          });
        vector_ = false;
        emit_history_rotations();
        builder_.CreateRetVoid();
    }

private:
    [[nodiscard]] llvm::Value* slot_addr(std::int64_t slot, llvm::Value* lane) {
        llvm::Value* row =
            builder_.CreateMul(llvm::ConstantInt::get(i64_, slot), stride64_);
        return builder_.CreateInBoundsGEP(f64_, slots_, builder_.CreateAdd(row, lane));
    }

    /// The lane address as a <kVectorRow x double>* (typed pointers: the
    /// GEP yields double*, the row ops need the vector view of it).
    [[nodiscard]] llvm::Value* row_addr(std::int64_t slot, llvm::Value* lane) {
        return builder_.CreateBitCast(slot_addr(slot, lane),
                                      llvm::PointerType::getUnqual(vec_ty_));
    }

    [[nodiscard]] llvm::Value* load_slot(std::int64_t slot, llvm::Value* lane) {
        if (vector_) {
            // Rows are only guaranteed 8-byte aligned (stride is a lane
            // count, not a byte alignment), so say so explicitly.
            return builder_.CreateAlignedLoad(vec_ty_, row_addr(slot, lane),
                                              llvm::Align(alignof(double)));
        }
        return builder_.CreateLoad(f64_, slot_addr(slot, lane));
    }

    void store_slot(std::int64_t slot, llvm::Value* lane, llvm::Value* value) {
        if (vector_) {
            builder_.CreateAlignedStore(value, row_addr(slot, lane),
                                        llvm::Align(alignof(double)));
            return;
        }
        builder_.CreateStore(value, slot_addr(slot, lane));
    }

    /// An fp immediate — splatted across the row in vector mode, so the
    /// instruction emitters below are width-agnostic.
    [[nodiscard]] llvm::Constant* fp(double value) {
        return llvm::ConstantFP::get(vector_ ? static_cast<llvm::Type*>(vec_ty_) : f64_,
                                     value);
    }

    /// C++'s `cond ? 1.0 : 0.0` over an i1.
    [[nodiscard]] llvm::Value* as_double(llvm::Value* cond) {
        return builder_.CreateSelect(cond, fp(1.0), fp(0.0));
    }

    /// `value != 0.0` — C++ truthiness, true for NaN (une).
    [[nodiscard]] llvm::Value* truthy(llvm::Value* value) {
        return builder_.CreateFCmpUNE(value, fp(0.0));
    }

    /// Declared-only libm call, nobuiltin at the call site: the symbol
    /// resolves to this process's own libm, the exact functions the fused
    /// interpreter calls through <cmath>. libm has no vector ABI here, so
    /// in vector mode the row scalarizes — extract each live lane, call,
    /// reinsert — preserving the exact per-lane libm rounding.
    [[nodiscard]] llvm::Value* call_libm(llvm::StringRef name,
                                         llvm::ArrayRef<llvm::Value*> args) {
        if (!vector_) {
            return scalar_libm_call(name, args);
        }
        llvm::Value* result = llvm::UndefValue::get(vec_ty_);
        for (unsigned j = 0; j < static_cast<unsigned>(runtime::LaneLayout::kVectorRow);
             ++j) {
            llvm::SmallVector<llvm::Value*, 2> lane_args;
            for (llvm::Value* arg : args) {
                lane_args.push_back(builder_.CreateExtractElement(arg, j));
            }
            result = builder_.CreateInsertElement(
                result, scalar_libm_call(name, lane_args), j);
        }
        return result;
    }

    [[nodiscard]] llvm::Value* scalar_libm_call(llvm::StringRef name,
                                                llvm::ArrayRef<llvm::Value*> args) {
        llvm::SmallVector<llvm::Type*, 2> params(args.size(), f64_);
        llvm::FunctionCallee callee = module_.getOrInsertFunction(
            name, llvm::FunctionType::get(f64_, params, /*isVarArg=*/false));
        if (auto* decl = llvm::dyn_cast<llvm::Function>(callee.getCallee())) {
            decl->setDoesNotThrow();
        }
        llvm::CallInst* call = builder_.CreateCall(callee, args);
        call->addFnAttr(llvm::Attribute::NoBuiltin);
        return call;
    }

    /// llvm.sqrt / llvm.fabs — IEEE-exact, and defined directly on vector
    /// types, so the same call works at both widths.
    [[nodiscard]] llvm::Value* call_intrinsic(llvm::Intrinsic::ID id, llvm::Value* arg) {
        return builder_.CreateUnaryIntrinsic(id, arg);
    }

    /// One `for (lane = begin; lane < end; lane += step)` loop around
    /// `body`. No vectorization metadata: the body already is the final
    /// (vector or scalar) shape. `body` must stay straight-line (every
    /// FusedOp lowers to loads, arithmetic, selects and calls — no new
    /// blocks).
    void emit_counted_loop(llvm::Value* begin, llvm::Value* end, std::int64_t step,
                           llvm::StringRef name,
                           const std::function<void(llvm::Value*)>& body) {
        llvm::BasicBlock* preheader = builder_.GetInsertBlock();
        auto* header = llvm::BasicBlock::Create(ctx_, llvm::Twine(name) + ".head", fn_);
        auto* body_bb = llvm::BasicBlock::Create(ctx_, llvm::Twine(name) + ".body", fn_);
        auto* exit = llvm::BasicBlock::Create(ctx_, llvm::Twine(name) + ".exit", fn_);
        builder_.CreateBr(header);

        builder_.SetInsertPoint(header);
        llvm::PHINode* lane = builder_.CreatePHI(i64_, 2, llvm::Twine(name) + ".lane");
        lane->addIncoming(begin, preheader);
        builder_.CreateCondBr(builder_.CreateICmpSLT(lane, end), body_bb, exit);

        builder_.SetInsertPoint(body_bb);
        body(lane);
        llvm::Value* next = builder_.CreateAdd(lane, llvm::ConstantInt::get(i64_, step));
        lane->addIncoming(next, builder_.GetInsertBlock());
        builder_.CreateBr(header);

        builder_.SetInsertPoint(exit);
    }

    /// The per-lane arithmetic of one fused instruction — the exact IR
    /// image of FusedProgram::execute_impl's switch.
    void emit_instruction(const expr::FusedInstr& instr, llvm::Value* lane) {
        using expr::FusedOp;
        auto a = [&] { return load_slot(instr.a, lane); };
        auto bb = [&] { return load_slot(instr.b, lane); };
        auto c = [&] { return load_slot(instr.c, lane); };
        llvm::IRBuilder<>& b = builder_;
        llvm::Value* result = nullptr;
        switch (instr.op) {
            case FusedOp::kConst:
                result = fp(instr.imm);
                break;
            case FusedOp::kCopy:
                result = a();
                break;
            case FusedOp::kNeg:
                result = b.CreateFNeg(a());
                break;
            case FusedOp::kNot:
                // s[a] == 0.0 ? 1.0 : 0.0 — ordered ==, false for NaN.
                result = as_double(b.CreateFCmpOEQ(a(), fp(0.0)));
                break;
            case FusedOp::kExp:
                result = call_libm("exp", {a()});
                break;
            case FusedOp::kLn:
                result = call_libm("log", {a()});
                break;
            case FusedOp::kLog10:
                result = call_libm("log10", {a()});
                break;
            case FusedOp::kSqrt:
                // IEEE-exact intrinsic, same rounding as libm sqrt.
                result = call_intrinsic(llvm::Intrinsic::sqrt, a());
                break;
            case FusedOp::kSin:
                result = call_libm("sin", {a()});
                break;
            case FusedOp::kCos:
                result = call_libm("cos", {a()});
                break;
            case FusedOp::kTan:
                result = call_libm("tan", {a()});
                break;
            case FusedOp::kAbs:
                result = call_intrinsic(llvm::Intrinsic::fabs, a());
                break;
            case FusedOp::kAdd:
                result = b.CreateFAdd(a(), bb());
                break;
            case FusedOp::kSub:
                result = b.CreateFSub(a(), bb());
                break;
            case FusedOp::kMul:
                result = b.CreateFMul(a(), bb());
                break;
            case FusedOp::kDiv:
                result = b.CreateFDiv(a(), bb());
                break;
            case FusedOp::kPow:
                result = call_libm("pow", {a(), bb()});
                break;
            case FusedOp::kMin: {
                // std::min(a, b) == (b < a) ? b : a — a survives a NaN b.
                llvm::Value* va = a();
                llvm::Value* vb = bb();
                result = b.CreateSelect(b.CreateFCmpOLT(vb, va), vb, va);
                break;
            }
            case FusedOp::kMax: {
                // std::max(a, b) == (a < b) ? b : a.
                llvm::Value* va = a();
                llvm::Value* vb = bb();
                result = b.CreateSelect(b.CreateFCmpOLT(va, vb), vb, va);
                break;
            }
            case FusedOp::kLt:
                result = as_double(b.CreateFCmpOLT(a(), bb()));
                break;
            case FusedOp::kLe:
                result = as_double(b.CreateFCmpOLE(a(), bb()));
                break;
            case FusedOp::kGt:
                result = as_double(b.CreateFCmpOGT(a(), bb()));
                break;
            case FusedOp::kGe:
                result = as_double(b.CreateFCmpOGE(a(), bb()));
                break;
            case FusedOp::kEq:
                result = as_double(b.CreateFCmpOEQ(a(), bb()));
                break;
            case FusedOp::kNe:
                // C++ != is true for unordered operands: une, not one.
                result = as_double(b.CreateFCmpUNE(a(), bb()));
                break;
            case FusedOp::kAnd:
                result = as_double(b.CreateAnd(truthy(a()), truthy(bb())));
                break;
            case FusedOp::kOr:
                result = as_double(b.CreateOr(truthy(a()), truthy(bb())));
                break;
            case FusedOp::kAddImm:
                result = b.CreateFAdd(a(), fp(instr.imm));
                break;
            case FusedOp::kSubImm:
                result = b.CreateFSub(a(), fp(instr.imm));
                break;
            case FusedOp::kRSubImm:
                result = b.CreateFSub(fp(instr.imm), a());
                break;
            case FusedOp::kMulImm:
                result = b.CreateFMul(a(), fp(instr.imm));
                break;
            case FusedOp::kDivImm:
                result = b.CreateFDiv(a(), fp(instr.imm));
                break;
            case FusedOp::kRDivImm:
                result = b.CreateFDiv(fp(instr.imm), a());
                break;
            case FusedOp::kMulAdd:
                // Two roundings, like the interpreter: fmul then fadd with
                // no contract flag, so no FMA can be formed.
                result = b.CreateFAdd(b.CreateFMul(a(), bb()), c());
                break;
            case FusedOp::kMulSub:
                result = b.CreateFSub(b.CreateFMul(a(), bb()), c());
                break;
            case FusedOp::kMulRSub:
                result = b.CreateFSub(c(), b.CreateFMul(a(), bb()));
                break;
            case FusedOp::kMulAddImm:
                result = b.CreateFAdd(b.CreateFMul(a(), fp(instr.imm)), bb());
                break;
            case FusedOp::kSelect:
                result = b.CreateSelect(truthy(a()), bb(), c());
                break;
            case FusedOp::kLinComb: {
                // acc = imm; acc += coeff_k * term_k, terms in order — the
                // interpreter's left-associated sequential accumulation,
                // unrolled (term count and coefficients are compile-time
                // constants of the model).
                const std::vector<expr::LinTerm>& terms = layout_.fused_program().lin_terms();
                llvm::Value* acc = fp(instr.imm);
                for (std::int32_t k = 0; k < instr.b; ++k) {
                    const expr::LinTerm& term =
                        terms[static_cast<std::size_t>(instr.a + k)];
                    llvm::Value* src = load_slot(term.slot, lane);
                    acc = b.CreateFAdd(acc, b.CreateFMul(fp(term.coeff), src));
                }
                result = acc;
                break;
            }
        }
        AMSVP_CHECK(result != nullptr, "unlowered fused opcode");
        store_slot(instr.dst, lane, result);
    }

    /// Rotate history rows after the program, deepest row first — the IR
    /// image of BatchCompiledModel::step's memcpy loop (and the external
    /// kernel's): row (base+k) <- row (base+k-1), one padded row each
    /// (copying the pad columns is harmless — they are zero on both sides).
    void emit_history_rotations() {
        llvm::Value* row_bytes =
            builder_.CreateMul(stride64_, llvm::ConstantInt::get(i64_, sizeof(double)));
        llvm::Value* lane0 = llvm::ConstantInt::get(i64_, 0);
        for (const runtime::ModelLayout::SymbolSlots& rotation : layout_.rotations()) {
            for (int k = rotation.depth; k >= 1; --k) {
                llvm::Value* dst = slot_addr(rotation.base + k, lane0);
                llvm::Value* src = slot_addr(rotation.base + k - 1, lane0);
                builder_.CreateMemCpy(dst, llvm::MaybeAlign(alignof(double)), src,
                                      llvm::MaybeAlign(alignof(double)), row_bytes);
            }
        }
    }

    llvm::LLVMContext& ctx_;
    llvm::Module& module_;
    const runtime::ModelLayout& layout_;
    const bool scalar_;
    llvm::IRBuilder<> builder_;
    llvm::Type* f64_;
    llvm::Type* i64_;
    llvm::FixedVectorType* vec_ty_;
    llvm::Function* fn_ = nullptr;
    llvm::Value* slots_ = nullptr;
    llvm::Value* batch64_ = nullptr;
    llvm::Value* stride64_ = nullptr;  ///< LaneLayout::padded_width(batch)
    bool vector_ = false;  ///< emit <kVectorRow x double> ops instead of scalars
};

}  // namespace

LoweredModule lower_model(const runtime::ModelLayout& layout) {
    AMSVP_CHECK(layout.strategy() == runtime::EvalStrategy::kFused,
                "ORC lowering needs a kFused layout");
    LoweredModule lowered;
    lowered.context = std::make_unique<llvm::LLVMContext>();
    lowered.module = std::make_unique<llvm::Module>("amsvp_orc", *lowered.context);
    StepFunctionLowering(*lowered.module, layout, /*scalar=*/true).run();
    StepFunctionLowering(*lowered.module, layout, /*scalar=*/false).run();
    return lowered;
}

void run_opt_pipeline(llvm::Module& module, llvm::TargetMachine* tm) {
    llvm::LoopAnalysisManager lam;
    llvm::FunctionAnalysisManager fam;
    llvm::CGSCCAnalysisManager cgam;
    llvm::ModuleAnalysisManager mam;
    llvm::PassBuilder pb(tm);
    pb.registerModuleAnalyses(mam);
    pb.registerCGSCCAnalyses(cgam);
    pb.registerFunctionAnalyses(fam);
    pb.registerLoopAnalyses(lam);
    pb.crossRegisterProxies(lam, fam, cgam, mam);
    llvm::ModulePassManager mpm;
    // The lowering already emits the final vector shape (explicit
    // <kVectorRow x double> rows over every padded row), so there is no
    // loop-rotate/loop-vectorize stage anymore: early-cse shares the
    // repeated slot loads and GEP arithmetic, instcombine folds the
    // splat/extract/insert traffic around scalarized libm calls, and
    // simplifycfg tidies the loop skeletons. This is the subset of O2 that
    // pays for itself on straight-line step kernels — the full default<O2>
    // pipeline costs ~4x the walltime here for no measurable steady-state
    // gain. None of these passes contract FP (the lowering emits no
    // `contract`/`fast` flags for them to act on).
    const char* pipeline = "function(early-cse<memssa>,instcombine,simplifycfg)";
    if (llvm::Error err = pb.parsePassPipeline(mpm, pipeline)) {
        // Unreachable with a healthy LLVM, but a typo in the string must
        // degrade to a working (if slower) compile, not a lost kernel.
        llvm::consumeError(std::move(err));
        mpm = pb.buildPerModuleDefaultPipeline(llvm::OptimizationLevel::O2);
    }
    mpm.run(module, mam);
}

std::string module_to_string(const llvm::Module& module) {
    std::string text;
    llvm::raw_string_ostream stream(text);
    module.print(stream, /*AAW=*/nullptr);
    stream.flush();
    return text;
}

}  // namespace orc_detail

bool llvm_backend_available() { return true; }

std::string llvm_backend_version() { return LLVM_VERSION_STRING; }

std::optional<LoweredIrText> lower_to_ir_text(
    const std::shared_ptr<const runtime::ModelLayout>& layout, std::string* error) {
    orc_detail::ensure_native_target();
    auto jtmb = llvm::orc::JITTargetMachineBuilder::detectHost();
    if (!jtmb) {
        if (error != nullptr) {
            *error = "cannot detect host target: " + llvm::toString(jtmb.takeError());
        }
        return std::nullopt;
    }
    auto tm = jtmb->createTargetMachine();
    if (!tm) {
        if (error != nullptr) {
            *error = "cannot create target machine: " + llvm::toString(tm.takeError());
        }
        return std::nullopt;
    }

    orc_detail::LoweredModule lowered = orc_detail::lower_model(*layout);
    lowered.module->setDataLayout((*tm)->createDataLayout());
    lowered.module->setTargetTriple((*tm)->getTargetTriple().str());

    std::string verify_text;
    llvm::raw_string_ostream verify_stream(verify_text);
    if (llvm::verifyModule(*lowered.module, &verify_stream)) {
        if (error != nullptr) {
            *error = "lowered module failed verification: " + verify_stream.str();
        }
        return std::nullopt;
    }

    LoweredIrText text;
    text.unoptimized = orc_detail::module_to_string(*lowered.module);
    orc_detail::run_opt_pipeline(*lowered.module, tm->get());
    text.optimized = orc_detail::module_to_string(*lowered.module);
    return text;
}

}  // namespace amsvp::codegen

#else  // !AMSVP_HAS_LLVM

namespace amsvp::codegen {

// Built without LLVM: the lowering surface stays linkable so callers can
// probe availability at runtime; the external-compiler path remains the
// native backend.

bool llvm_backend_available() { return false; }

std::string llvm_backend_version() { return "none"; }

std::optional<LoweredIrText> lower_to_ir_text(
    const std::shared_ptr<const runtime::ModelLayout>& /*layout*/, std::string* error) {
    if (error != nullptr) {
        *error = "in-process LLVM backend unavailable: built with AMSVP_WITH_LLVM=OFF";
    }
    return std::nullopt;
}

}  // namespace amsvp::codegen

#endif  // AMSVP_HAS_LLVM
