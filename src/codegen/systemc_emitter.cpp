#include "codegen/codegen.hpp"
#include "codegen/emit_common.hpp"
#include "support/strings.hpp"

namespace amsvp::codegen {

using detail::EmitPlan;

namespace {

/// Body shared by the DE and TDF processing() methods: read ports into
/// locals named after the input symbols, run the fused program (scratch
/// registers as locals), write outputs, rotate history.
std::string processing_body(const EmitPlan& plan, std::string_view read_suffix,
                            std::string_view time_expr) {
    std::string out;
    for (const std::string& in : plan.inputs) {
        out += "        const double " + in + " = " + in + "_port" + std::string(read_suffix) +
               ";\n";
    }
    if (plan.uses_time) {
        out += "        _abstime = " + std::string(time_expr) + ";\n";
    }
    for (const std::string& decl : plan.scratch_locals) {
        out += "        " + decl + "\n";
    }
    for (const std::string& stmt : plan.assignments) {
        out += "        " + stmt + "\n";
    }
    for (std::size_t i = 0; i < plan.outputs.size(); ++i) {
        out += "        out" + std::to_string(i) + "_port.write(" + plan.outputs[i] + ");\n";
    }
    if (!plan.rotations.empty()) {
        out += "        // History rotation.\n";
        for (const std::string& stmt : plan.rotations) {
            out += "        " + stmt + "\n";
        }
    }
    return out;
}

std::string member_declarations(const EmitPlan& plan) {
    std::string out;
    for (const auto& s : plan.states) {
        if (!s.is_input) {  // inputs read from ports as processing() locals
            out += "    double " + s.id + " = " + support::format_double(s.initial) + ";\n";
        }
        for (int k = 1; k <= s.depth; ++k) {
            out += "    double " + detail::history_name(s.id, k) + " = " +
                   support::format_double(s.initial) + ";\n";
        }
    }
    for (const std::string& m : plan.plain_members) {
        out += "    double " + m + " = 0;\n";
    }
    if (plan.uses_time) {
        out += "    double _abstime = 0;\n";
    }
    return out;
}

}  // namespace

// SystemC discrete-event target: a clocked SC_MODULE evaluating the fused
// program on every rising edge. The clock period encodes the model timestep.
std::string emit_systemc_de(const abstraction::SignalFlowModel& model,
                            const CodegenOptions& options) {
    // slot_accessor is a plain-C++-target hook; applied here it would only
    // force a dead _abstime member into the module.
    CodegenOptions sc_options = options;
    sc_options.slot_accessor = false;
    const EmitPlan plan = detail::build_plan(model, sc_options);
    std::string out;
    if (options.header_comment) {
        out += detail::provenance_comment(model, "SystemC-DE");
    }
    out += "#pragma once\n\n#include <algorithm>\n#include <cmath>\n#include <systemc.h>\n\n";
    out += "SC_MODULE(" + plan.type_name + ") {\n";
    out += "    sc_core::sc_in<bool> clk;  // period = " +
           support::format_double(plan.timestep) + " s\n";
    for (const std::string& in : plan.inputs) {
        out += "    sc_core::sc_in<double> " + in + "_port;\n";
    }
    for (std::size_t i = 0; i < plan.outputs.size(); ++i) {
        out += "    sc_core::sc_out<double> out" + std::to_string(i) + "_port;  // " +
               plan.outputs[i] + "\n";
    }
    out += "\n";
    out += member_declarations(plan);
    out += "\n    void processing() {\n";
    out += processing_body(plan, ".read()",
                           "sc_core::sc_time_stamp().to_seconds()");
    out += "    }\n\n";
    out += "    SC_CTOR(" + plan.type_name + ") {\n";
    out += "        SC_METHOD(processing);\n";
    out += "        sensitive << clk.pos();\n";
    out += "    }\n";
    out += "};\n";
    return out;
}

// SystemC-AMS timed-dataflow target: rate-1 ports and a static timestep.
std::string emit_systemc_tdf(const abstraction::SignalFlowModel& model,
                             const CodegenOptions& options) {
    CodegenOptions sc_options = options;
    sc_options.slot_accessor = false;  // plain-C++-target hook; see emit_systemc_de
    const EmitPlan plan = detail::build_plan(model, sc_options);
    std::string out;
    if (options.header_comment) {
        out += detail::provenance_comment(model, "SystemC-AMS/TDF");
    }
    out += "#pragma once\n\n#include <algorithm>\n#include <cmath>\n#include <systemc-ams.h>\n\n";
    out += "SCA_TDF_MODULE(" + plan.type_name + ") {\n";
    for (const std::string& in : plan.inputs) {
        out += "    sca_tdf::sca_in<double> " + in + "_port;\n";
    }
    for (std::size_t i = 0; i < plan.outputs.size(); ++i) {
        out += "    sca_tdf::sca_out<double> out" + std::to_string(i) + "_port;  // " +
               plan.outputs[i] + "\n";
    }
    out += "\n";
    out += member_declarations(plan);
    out += "\n    void set_attributes() {\n";
    out += "        set_timestep(" + support::format_double(plan.timestep) +
           ", sc_core::SC_SEC);\n";
    out += "    }\n";
    out += "\n    void processing() {\n";
    out += processing_body(plan, ".read()", "get_time().to_seconds()");
    out += "    }\n\n";
    out += "    SCA_CTOR(" + plan.type_name + ") {}\n";
    out += "};\n";
    return out;
}

}  // namespace amsvp::codegen
