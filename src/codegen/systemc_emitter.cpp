#include "codegen/codegen.hpp"
#include "codegen/emit_common.hpp"
#include "support/strings.hpp"

namespace amsvp::codegen {

using detail::ModelLayout;

namespace {

/// Body shared by the DE and TDF processing() methods: read ports into
/// locals named after the input symbols, run the program, write outputs,
/// rotate history.
std::string processing_body(const ModelLayout& layout, std::string_view read_suffix,
                            std::string_view time_expr) {
    std::string out;
    for (const std::string& in : layout.inputs) {
        out += "        const double " + in + " = " + in + "_port" + std::string(read_suffix) +
               ";\n";
    }
    if (layout.uses_time) {
        out += "        _abstime = " + std::string(time_expr) + ";\n";
    }
    for (const std::string& stmt : layout.assignments) {
        out += "        " + stmt + "\n";
    }
    for (std::size_t i = 0; i < layout.outputs.size(); ++i) {
        out += "        out" + std::to_string(i) + "_port.write(" + layout.outputs[i] + ");\n";
    }
    if (!layout.rotations.empty()) {
        out += "        // History rotation.\n";
        for (const std::string& stmt : layout.rotations) {
            out += "        " + stmt + "\n";
        }
    }
    return out;
}

std::string member_declarations(const ModelLayout& layout) {
    std::string out;
    for (const auto& s : layout.states) {
        out += "    double " + s.id + " = " + support::format_double(s.initial) + ";\n";
        for (int k = 1; k <= s.depth; ++k) {
            out += "    double " + detail::history_name(s.id, k) + " = " +
                   support::format_double(s.initial) + ";\n";
        }
    }
    for (const std::string& m : layout.plain_members) {
        out += "    double " + m + " = 0;\n";
    }
    if (layout.uses_time) {
        out += "    double _abstime = 0;\n";
    }
    return out;
}

}  // namespace

// SystemC discrete-event target: a clocked SC_MODULE evaluating the program
// on every rising edge. The clock period encodes the model timestep.
std::string emit_systemc_de(const abstraction::SignalFlowModel& model,
                            const CodegenOptions& options) {
    const ModelLayout layout = detail::build_layout(model, options.type_name);
    std::string out;
    if (options.header_comment) {
        out += detail::provenance_comment(model, "SystemC-DE");
    }
    out += "#pragma once\n\n#include <cmath>\n#include <systemc.h>\n\n";
    out += "SC_MODULE(" + layout.type_name + ") {\n";
    out += "    sc_core::sc_in<bool> clk;  // period = " +
           support::format_double(layout.timestep) + " s\n";
    for (const std::string& in : layout.inputs) {
        out += "    sc_core::sc_in<double> " + in + "_port;\n";
    }
    for (std::size_t i = 0; i < layout.outputs.size(); ++i) {
        out += "    sc_core::sc_out<double> out" + std::to_string(i) + "_port;  // " +
               layout.outputs[i] + "\n";
    }
    out += "\n";
    out += member_declarations(layout);
    out += "\n    void processing() {\n";
    out += processing_body(layout, ".read()",
                           "sc_core::sc_time_stamp().to_seconds()");
    out += "    }\n\n";
    out += "    SC_CTOR(" + layout.type_name + ") {\n";
    out += "        SC_METHOD(processing);\n";
    out += "        sensitive << clk.pos();\n";
    out += "    }\n";
    out += "};\n";
    return out;
}

// SystemC-AMS timed-dataflow target: rate-1 ports and a static timestep.
std::string emit_systemc_tdf(const abstraction::SignalFlowModel& model,
                             const CodegenOptions& options) {
    const ModelLayout layout = detail::build_layout(model, options.type_name);
    std::string out;
    if (options.header_comment) {
        out += detail::provenance_comment(model, "SystemC-AMS/TDF");
    }
    out += "#pragma once\n\n#include <cmath>\n#include <systemc-ams.h>\n\n";
    out += "SCA_TDF_MODULE(" + layout.type_name + ") {\n";
    for (const std::string& in : layout.inputs) {
        out += "    sca_tdf::sca_in<double> " + in + "_port;\n";
    }
    for (std::size_t i = 0; i < layout.outputs.size(); ++i) {
        out += "    sca_tdf::sca_out<double> out" + std::to_string(i) + "_port;  // " +
               layout.outputs[i] + "\n";
    }
    out += "\n";
    out += member_declarations(layout);
    out += "\n    void set_attributes() {\n";
    out += "        set_timestep(" + support::format_double(layout.timestep) +
           ", sc_core::SC_SEC);\n";
    out += "    }\n";
    out += "\n    void processing() {\n";
    out += processing_body(layout, ".read()", "get_time().to_seconds()");
    out += "    }\n\n";
    out += "    SCA_CTOR(" + layout.type_name + ") {}\n";
    out += "};\n";
    return out;
}

}  // namespace amsvp::codegen
