#include "eln/tableau.hpp"

#include <algorithm>

#include "expr/printer.hpp"
#include "support/check.hpp"

namespace amsvp::eln {

using expr::ExprPtr;
using expr::LinearForm;
using expr::LinearKey;
using expr::Symbol;
using expr::SymbolKind;
using netlist::BranchId;
using netlist::Circuit;
using netlist::NodeId;

int Tableau::node_column(NodeId node) const {
    return node_col_[static_cast<std::size_t>(node)];
}

int Tableau::current_column(BranchId branch) const {
    // Currents sit after the (node_count - 1) potential columns.
    return static_cast<int>(circuit_->node_count()) - 1 + branch;
}

std::optional<Tableau> Tableau::build(const Circuit& circuit, double timestep,
                                      std::string* error) {
    AMSVP_CHECK(timestep > 0.0, "timestep must be positive");
    AMSVP_CHECK(circuit.has_ground(), "tableau requires a ground node");

    Tableau t;
    t.circuit_ = &circuit;
    t.timestep_ = timestep;
    t.inputs_ = circuit.input_names();

    // Column layout.
    t.node_col_.assign(circuit.node_count(), -1);
    int col = 0;
    for (NodeId n = 0; n < static_cast<NodeId>(circuit.node_count()); ++n) {
        if (n != circuit.ground()) {
            t.node_col_[static_cast<std::size_t>(n)] = col++;
        }
    }
    t.size_ = circuit.node_count() - 1 + circuit.branch_count();

    // Offset programs read [inputs..., time].
    t.offset_slot_count_ = t.inputs_.size() + 1;
    const expr::SlotResolver offset_resolver = [&t](const Symbol& s, int delay) -> int {
        AMSVP_CHECK(delay == 0, "tableau offsets cannot reference history");
        if (s.kind == SymbolKind::kTime) {
            return static_cast<int>(t.inputs_.size());
        }
        AMSVP_CHECK(s.kind == SymbolKind::kInput, "unexpected symbol in tableau offset");
        const auto it = std::find(t.inputs_.begin(), t.inputs_.end(), s.name);
        AMSVP_CHECK(it != t.inputs_.end(), "unknown input in tableau offset");
        return static_cast<int>(it - t.inputs_.begin());
    };

    // KCL rows (one per non-ground node).
    for (NodeId n = 0; n < static_cast<NodeId>(circuit.node_count()); ++n) {
        if (n == circuit.ground()) {
            continue;
        }
        Row row;
        for (const Circuit::Incidence& inc : circuit.incident(n)) {
            row.coefficients.emplace_back(t.current_column(inc.branch),
                                          static_cast<double>(inc.sign));
        }
        t.rows_.push_back(std::move(row));
    }

    // Constitutive rows: lhs - rhs == 0, linear in branch quantities.
    for (BranchId b = 0; b < static_cast<BranchId>(circuit.branch_count()); ++b) {
        const expr::Equation& eq = circuit.dipole_equation(b);
        const ExprPtr constraint = expr::Expr::sub(eq.lhs, eq.rhs);
        auto form = LinearForm::extract(constraint, expr::branch_quantities_unknown());
        if (!form) {
            if (error != nullptr) {
                *error = "constitutive equation of branch '" + circuit.branch(b).name +
                         "' is not linear: " + eq.display();
            }
            return std::nullopt;
        }

        Row row;
        auto add_branch_quantity = [&](const Symbol& sym, double coeff, bool to_history) {
            // Map a branch quantity onto unknown columns: V(b) expands to the
            // node-potential difference, I(b) is a direct column.
            std::vector<std::pair<int, double>> cols;
            if (sym.kind == SymbolKind::kBranchVoltage) {
                const auto bid = circuit.find_branch(sym.name);
                AMSVP_CHECK(bid.has_value(), "unknown branch in equation");
                const netlist::Branch& br = circuit.branch(*bid);
                if (const int cp = t.node_column(br.pos); cp >= 0) {
                    cols.emplace_back(cp, coeff);
                }
                if (const int cn = t.node_column(br.neg); cn >= 0) {
                    cols.emplace_back(cn, -coeff);
                }
            } else {
                const auto bid = circuit.find_branch(sym.name);
                AMSVP_CHECK(bid.has_value(), "unknown branch in equation");
                cols.emplace_back(t.current_column(*bid), coeff);
            }
            auto& target = to_history ? row.history : row.coefficients;
            for (const auto& c : cols) {
                target.push_back(c);
            }
        };

        for (const auto& [key, coeff] : form->coefficients()) {
            if (!key.derivative) {
                add_branch_quantity(key.symbol, coeff, /*to_history=*/false);
            } else {
                // c * ddt(q) -> (c/h) q  - (c/h) q_prev
                const double ch = coeff / timestep;
                add_branch_quantity(key.symbol, ch, /*to_history=*/false);
                add_branch_quantity(key.symbol, ch, /*to_history=*/true);
            }
        }
        if (!form->offset()->is_constant(0.0)) {
            row.offset = expr::Program::compile(form->offset(), offset_resolver);
        }
        t.rows_.push_back(std::move(row));
    }
    AMSVP_CHECK(t.rows_.size() == t.size_, "tableau row/column mismatch");
    return t;
}

void Tableau::stamp_matrix(numeric::Matrix& a) const {
    a.reset(size_, size_);
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        for (const auto& [col, coeff] : rows_[r].coefficients) {
            a(r, static_cast<std::size_t>(col)) += coeff;
        }
    }
}

void Tableau::build_rhs(const numeric::Vector& x_prev, const std::vector<double>& input_values,
                        double time_seconds, numeric::Vector& b) const {
    AMSVP_CHECK(x_prev.size() == size_, "previous solution size mismatch");
    AMSVP_CHECK(input_values.size() == inputs_.size(), "input value count mismatch");
    b.assign(size_, 0.0);

    // Offset programs read [inputs..., time] from a small scratch buffer
    // (reused member: build_rhs runs once per analog timestep and must not
    // allocate in steady state).
    std::vector<double>& slots = offset_slots_scratch_;
    slots.assign(offset_slot_count_, 0.0);
    for (std::size_t i = 0; i < input_values.size(); ++i) {
        slots[i] = input_values[i];
    }
    slots[inputs_.size()] = time_seconds;

    for (std::size_t r = 0; r < rows_.size(); ++r) {
        double acc = 0.0;
        for (const auto& [col, coeff] : rows_[r].history) {
            acc += coeff * x_prev[static_cast<std::size_t>(col)];
        }
        if (rows_[r].offset) {
            acc -= rows_[r].offset->evaluate(slots.data());
        }
        b[r] = acc;
    }
}

double Tableau::node_voltage(const numeric::Vector& x, NodeId node) const {
    const int col = node_column(node);
    return col < 0 ? 0.0 : x[static_cast<std::size_t>(col)];
}

double Tableau::branch_voltage(const numeric::Vector& x, BranchId branch) const {
    const netlist::Branch& b = circuit_->branch(branch);
    return node_voltage(x, b.pos) - node_voltage(x, b.neg);
}

double Tableau::branch_current(const numeric::Vector& x, BranchId branch) const {
    return x[static_cast<std::size_t>(current_column(branch))];
}

}  // namespace amsvp::eln
