// Sparse-tableau formulation shared by the ELN and SPICE engines.
//
// Unknown vector x = [ node potentials (ground excluded) | branch currents ].
// Equations: one KCL row per non-ground node, one constitutive row per
// branch. Branch voltages are expressed through node potentials, so any
// linear dipole equation stamps directly; derivative terms are discretized
// with backward Euler (companion form):
//
//     ddt(q)  ->  (q - q_prev) / h
//
// The two engines differ only in policy: ELN factorises the (constant)
// matrix once and back-substitutes per step, the SPICE engine re-stamps and
// re-factorises every Newton iteration of every step — the exact cost split
// the paper attributes to conservative simulation.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "expr/bytecode.hpp"
#include "expr/linear_form.hpp"
#include "netlist/circuit.hpp"
#include "numeric/matrix.hpp"

namespace amsvp::eln {

class Tableau {
public:
    /// Build from a circuit. Fails (error set) when a constitutive equation
    /// is not linear in the branch quantities — nonlinear devices go through
    /// the SPICE engine's Newton path instead.
    [[nodiscard]] static std::optional<Tableau> build(const netlist::Circuit& circuit,
                                                      double timestep,
                                                      std::string* error = nullptr);

    [[nodiscard]] std::size_t size() const { return size_; }
    [[nodiscard]] double timestep() const { return timestep_; }
    [[nodiscard]] const std::vector<std::string>& input_names() const { return inputs_; }

    /// Stamp the (constant) system matrix.
    void stamp_matrix(numeric::Matrix& a) const;

    /// Build the right-hand side for one step: needs the previous solution
    /// and the current input values (model order: input_names()).
    void build_rhs(const numeric::Vector& x_prev, const std::vector<double>& input_values,
                   double time_seconds, numeric::Vector& b) const;

    // --- Solution accessors -------------------------------------------------
    [[nodiscard]] double node_voltage(const numeric::Vector& x, netlist::NodeId node) const;
    [[nodiscard]] double branch_voltage(const numeric::Vector& x,
                                        netlist::BranchId branch) const;
    [[nodiscard]] double branch_current(const numeric::Vector& x,
                                        netlist::BranchId branch) const;

    [[nodiscard]] const netlist::Circuit& circuit() const { return *circuit_; }

private:
    Tableau() = default;

    struct Row {
        /// Static matrix entries: (column, coefficient).
        std::vector<std::pair<int, double>> coefficients;
        /// RHS contributions from the previous solution: b += c * x_prev[col].
        std::vector<std::pair<int, double>> history;
        /// RHS contribution from inputs/time: b -= offset(t, u). Empty
        /// program means no offset.
        std::optional<expr::Program> offset;
    };

    [[nodiscard]] int node_column(netlist::NodeId node) const;
    [[nodiscard]] int current_column(netlist::BranchId branch) const;

    const netlist::Circuit* circuit_ = nullptr;
    double timestep_ = 0.0;
    std::size_t size_ = 0;
    std::vector<int> node_col_;  ///< per node; -1 for ground
    std::vector<Row> rows_;
    std::vector<std::string> inputs_;
    std::size_t offset_slot_count_ = 0;
    /// Scratch for offset-program inputs, reused across build_rhs calls
    /// (makes concurrent build_rhs on one Tableau unsafe; copy per thread).
    mutable std::vector<double> offset_slots_scratch_;
};

}  // namespace amsvp::eln
