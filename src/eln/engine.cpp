#include "eln/engine.hpp"

#include "support/check.hpp"

namespace amsvp::eln {

ElnEngine::ElnEngine(const netlist::Circuit& circuit, double timestep)
    : tableau_([&] {
          std::string error;
          auto t = Tableau::build(circuit, timestep, &error);
          if (!t) {
              std::fprintf(stderr, "ELN: %s\n", error.c_str());
          }
          AMSVP_CHECK(t.has_value(), "ELN engine requires a linear circuit");
          return std::move(*t);
      }()) {
    numeric::Matrix a;
    tableau_.stamp_matrix(a);
    auto lu = numeric::LuFactorization::factorise(a);
    AMSVP_CHECK(lu.has_value(), "ELN system matrix is singular");
    lu_ = std::move(*lu);
    x_.assign(tableau_.size(), 0.0);
    b_.assign(tableau_.size(), 0.0);
}

void ElnEngine::reset() {
    x_.assign(tableau_.size(), 0.0);
    steps_ = 0;
}

void ElnEngine::step(const std::vector<double>& input_values, double time_seconds) {
    tableau_.build_rhs(x_, input_values, time_seconds, b_);
    lu_.solve_in_place(b_);
    x_.swap(b_);
    ++steps_;
}

double ElnEngine::node_voltage(std::string_view node_name) const {
    const auto node = tableau_.circuit().find_node(node_name);
    AMSVP_CHECK(node.has_value(), "unknown node");
    return tableau_.node_voltage(x_, *node);
}

double ElnEngine::branch_voltage(std::string_view branch_name) const {
    const auto branch = tableau_.circuit().find_branch(branch_name);
    AMSVP_CHECK(branch.has_value(), "unknown branch");
    return tableau_.branch_voltage(x_, *branch);
}

double ElnEngine::branch_current(std::string_view branch_name) const {
    const auto branch = tableau_.circuit().find_branch(branch_name);
    AMSVP_CHECK(branch.has_value(), "unknown branch");
    return tableau_.branch_current(x_, *branch);
}

double ElnEngine::voltage_between(std::string_view pos, std::string_view neg) const {
    const auto p = tableau_.circuit().find_node(pos);
    const auto n = tableau_.circuit().find_node(neg);
    AMSVP_CHECK(p.has_value() && n.has_value(), "unknown node");
    return tableau_.node_voltage(x_, *p) - tableau_.node_voltage(x_, *n);
}

ElnDeModule::ElnDeModule(de::Simulator& sim, const netlist::Circuit& circuit, double timestep,
                         std::map<std::string, numeric::SourceFunction> stimuli,
                         std::string observed_pos, std::string observed_neg)
    : sim_(sim),
      engine_(circuit, timestep),
      pos_(std::move(observed_pos)),
      neg_(std::move(observed_neg)),
      trace_(timestep, timestep),
      period_(de::from_seconds(timestep)) {
    for (const std::string& name : engine_.input_names()) {
        const auto it = stimuli.find(name);
        AMSVP_CHECK(it != stimuli.end(), "missing stimulus for ELN input");
        sources_.push_back(it->second);
    }
    input_scratch_.assign(sources_.size(), 0.0);
    output_ = std::make_unique<de::Signal<double>>(sim, "eln_out", 0.0);
    sim_.schedule_periodic(sim_.now() + period_, period_, [this] { activate(); });
}

void ElnDeModule::activate() {
    const double t = de::to_seconds(sim_.now());
    // Reused member buffer: activations run once per analog timestep and
    // must not allocate.
    for (std::size_t i = 0; i < sources_.size(); ++i) {
        input_scratch_[i] = sources_[i](t);
    }
    engine_.step(input_scratch_, t);
    const double v = engine_.voltage_between(pos_, neg_);
    output_->write(v);
    trace_.append(v);
}

}  // namespace amsvp::eln
