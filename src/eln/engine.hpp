// ELN engine — the SystemC-AMS Electrical-Linear-Network stand-in.
//
// At elaboration the network equations are set up once and the system matrix
// is LU-factorised once (linear network, fixed timestep); every activation
// only rebuilds the right-hand side and back-substitutes. Embedded in the DE
// kernel the engine behaves like the SC-AMS synchronisation layer: one timed
// activation per analog timestep, values exchanged through kernel channels.
#pragma once

#include <map>
#include <memory>

#include "de/kernel.hpp"
#include "de/signal.hpp"
#include "eln/tableau.hpp"
#include "numeric/lu.hpp"
#include "numeric/sources.hpp"
#include "numeric/waveform.hpp"

namespace amsvp::eln {

class ElnEngine {
public:
    /// Build + factorise. Aborts on non-linear circuits (use the SPICE
    /// engine for those) — check with Tableau::build first when unsure.
    ElnEngine(const netlist::Circuit& circuit, double timestep);

    [[nodiscard]] double timestep() const { return tableau_.timestep(); }
    [[nodiscard]] const std::vector<std::string>& input_names() const {
        return tableau_.input_names();
    }

    /// Reset state (previous solution) to zero.
    void reset();

    /// Advance one step at absolute time `time_seconds`.
    void step(const std::vector<double>& input_values, double time_seconds);

    [[nodiscard]] double node_voltage(std::string_view node_name) const;
    [[nodiscard]] double branch_voltage(std::string_view branch_name) const;
    [[nodiscard]] double branch_current(std::string_view branch_name) const;
    /// Voltage between two nodes.
    [[nodiscard]] double voltage_between(std::string_view pos, std::string_view neg) const;

    [[nodiscard]] std::uint64_t steps() const { return steps_; }

private:
    Tableau tableau_;
    numeric::LuFactorization lu_;
    numeric::Vector x_;
    numeric::Vector b_;
    std::uint64_t steps_ = 0;
};

/// DE-kernel wrapper: activates the engine every timestep, reading stimuli
/// from source functions and publishing one observed voltage to a signal.
class ElnDeModule {
public:
    ElnDeModule(de::Simulator& sim, const netlist::Circuit& circuit, double timestep,
                std::map<std::string, numeric::SourceFunction> stimuli,
                std::string observed_pos, std::string observed_neg);

    [[nodiscard]] de::Signal<double>& output() { return *output_; }
    /// Trace of the observed voltage, one sample per activation.
    [[nodiscard]] const numeric::Waveform& trace() const { return trace_; }
    [[nodiscard]] const ElnEngine& engine() const { return engine_; }

private:
    void activate();

    de::Simulator& sim_;
    ElnEngine engine_;
    std::vector<numeric::SourceFunction> sources_;
    std::vector<double> input_scratch_;  ///< per-activation input samples
    std::string pos_;
    std::string neg_;
    std::unique_ptr<de::Signal<double>> output_;
    numeric::Waveform trace_;
    de::Time period_;
};

}  // namespace amsvp::eln
