#include "netlist/builder.hpp"

#include <cstdio>

#include "support/check.hpp"

namespace amsvp::netlist {

using expr::Equation;
using expr::EquationKind;
using expr::Expr;

CircuitBuilder::CircuitBuilder(std::string circuit_name) : circuit_(std::move(circuit_name)) {}

NodeId CircuitBuilder::node(std::string_view name) {
    const NodeId id = circuit_.node(name);
    if (name == "gnd" && !circuit_.has_ground()) {
        circuit_.set_ground(id);
    }
    return id;
}

void CircuitBuilder::ground(std::string_view name) {
    circuit_.set_ground(node(name));
}

Branch CircuitBuilder::make_branch(std::string name, std::string_view pos, std::string_view neg,
                                   DeviceKind kind) {
    Branch b;
    b.name = std::move(name);
    b.pos = node(pos);
    b.neg = node(neg);
    b.kind = kind;
    return b;
}

BranchId CircuitBuilder::resistor(std::string name, std::string_view pos, std::string_view neg,
                                  double ohms) {
    AMSVP_CHECK(ohms > 0.0, "resistance must be positive");
    Branch b = make_branch(name, pos, neg, DeviceKind::kResistor);
    b.value = ohms;
    Equation eq = expr::make_equation(
        EquationKind::kDipole, b.current_symbol(),
        Expr::div(Expr::symbol(b.voltage_symbol()), Expr::constant(ohms)), "dipole(" + b.name + ")");
    return circuit_.add_branch(std::move(b), std::move(eq));
}

BranchId CircuitBuilder::capacitor(std::string name, std::string_view pos, std::string_view neg,
                                   double farads) {
    AMSVP_CHECK(farads > 0.0, "capacitance must be positive");
    Branch b = make_branch(name, pos, neg, DeviceKind::kCapacitor);
    b.value = farads;
    Equation eq = expr::make_equation(
        EquationKind::kDipole, b.current_symbol(),
        Expr::mul(Expr::constant(farads), Expr::ddt(Expr::symbol(b.voltage_symbol()))),
        "dipole(" + b.name + ")");
    return circuit_.add_branch(std::move(b), std::move(eq));
}

BranchId CircuitBuilder::inductor(std::string name, std::string_view pos, std::string_view neg,
                                  double henries) {
    AMSVP_CHECK(henries > 0.0, "inductance must be positive");
    Branch b = make_branch(name, pos, neg, DeviceKind::kInductor);
    b.value = henries;
    Equation eq = expr::make_equation(
        EquationKind::kDipole, b.voltage_symbol(),
        Expr::mul(Expr::constant(henries), Expr::ddt(Expr::symbol(b.current_symbol()))),
        "dipole(" + b.name + ")");
    return circuit_.add_branch(std::move(b), std::move(eq));
}

BranchId CircuitBuilder::voltage_source(std::string name, std::string_view pos,
                                        std::string_view neg, std::string input_name) {
    Branch b = make_branch(name, pos, neg, DeviceKind::kVoltageSource);
    b.input = input_name;
    Equation eq = expr::make_equation(EquationKind::kDipole, b.voltage_symbol(),
                                      Expr::symbol(expr::input_symbol(std::move(input_name))),
                                      "dipole(" + b.name + ")");
    return circuit_.add_branch(std::move(b), std::move(eq));
}

BranchId CircuitBuilder::current_source(std::string name, std::string_view pos,
                                        std::string_view neg, std::string input_name) {
    Branch b = make_branch(name, pos, neg, DeviceKind::kCurrentSource);
    b.input = input_name;
    Equation eq = expr::make_equation(EquationKind::kDipole, b.current_symbol(),
                                      Expr::symbol(expr::input_symbol(std::move(input_name))),
                                      "dipole(" + b.name + ")");
    return circuit_.add_branch(std::move(b), std::move(eq));
}

BranchId CircuitBuilder::vcvs(std::string name, std::string_view pos, std::string_view neg,
                              std::string_view control_branch, double gain) {
    auto control = circuit_.find_branch(control_branch);
    AMSVP_CHECK(control.has_value(), "vcvs control branch must exist before the source");
    Branch b = make_branch(name, pos, neg, DeviceKind::kVcvs);
    b.value = gain;
    b.control = *control;
    Equation eq = expr::make_equation(
        EquationKind::kDipole, b.voltage_symbol(),
        Expr::mul(Expr::constant(gain),
                  Expr::symbol(circuit_.branch(*control).voltage_symbol())),
        "dipole(" + b.name + ")");
    return circuit_.add_branch(std::move(b), std::move(eq));
}

BranchId CircuitBuilder::vccs(std::string name, std::string_view pos, std::string_view neg,
                              std::string_view control_branch, double gain) {
    auto control = circuit_.find_branch(control_branch);
    AMSVP_CHECK(control.has_value(), "vccs control branch must exist before the source");
    Branch b = make_branch(name, pos, neg, DeviceKind::kVccs);
    b.value = gain;
    b.control = *control;
    Equation eq = expr::make_equation(
        EquationKind::kDipole, b.current_symbol(),
        Expr::mul(Expr::constant(gain),
                  Expr::symbol(circuit_.branch(*control).voltage_symbol())),
        "dipole(" + b.name + ")");
    return circuit_.add_branch(std::move(b), std::move(eq));
}

BranchId CircuitBuilder::probe(std::string name, std::string_view pos, std::string_view neg) {
    Branch b = make_branch(name, pos, neg, DeviceKind::kProbe);
    Equation eq = expr::make_equation(EquationKind::kDipole, b.current_symbol(),
                                      Expr::constant(0.0), "dipole(" + b.name + ")");
    return circuit_.add_branch(std::move(b), std::move(eq));
}

BranchId CircuitBuilder::generic(std::string name, std::string_view pos, std::string_view neg,
                                 expr::Equation equation, DeviceKind kind) {
    Branch b = make_branch(std::move(name), pos, neg, kind);
    return circuit_.add_branch(std::move(b), std::move(equation));
}

Circuit CircuitBuilder::build() {
    const std::vector<std::string> problems = circuit_.validate();
    if (!problems.empty()) {
        for (const std::string& p : problems) {
            std::fprintf(stderr, "circuit '%s': %s\n", circuit_.name().c_str(), p.c_str());
        }
        AMSVP_CHECK(false, "circuit failed structural validation");
    }
    return std::move(circuit_);
}

Circuit make_rc_ladder(int stages, double r_ohms, double c_farads) {
    AMSVP_CHECK(stages >= 1, "ladder needs at least one stage");
    CircuitBuilder cb("RC" + std::to_string(stages));
    cb.ground("gnd");
    cb.voltage_source("VIN", "in", "gnd", "u0");
    std::string prev = "in";
    for (int i = 1; i <= stages; ++i) {
        const std::string mid = (i == stages) ? "out" : "n" + std::to_string(i);
        cb.resistor("R" + std::to_string(i), prev, mid, r_ohms);
        cb.capacitor("C" + std::to_string(i), mid, "gnd", c_farads);
        prev = mid;
    }
    return cb.build();
}

namespace {

/// Open-loop gain used by the operational-amplifier macromodel (Fig. 8b).
constexpr double kOpenLoopGain = 1e5;

/// Instantiate the op-amp macromodel: Rin across (inv, plus), an inverting
/// VCVS behind Rout driving `out`. Branch names are prefixed so several
/// op-amps can coexist.
void add_opamp_macromodel(CircuitBuilder& cb, const std::string& prefix, std::string_view inv,
                          std::string_view plus, std::string_view out, double r_in,
                          double r_out) {
    cb.resistor(prefix + "RIN", inv, plus, r_in);
    // V(EAMP) = -A * V(RIN): the amplifier inverts the differential input.
    cb.vcvs(prefix + "EAMP", prefix + "eo", "gnd", prefix + "RIN", -kOpenLoopGain);
    cb.resistor(prefix + "ROUT", prefix + "eo", out, r_out);
}

}  // namespace

Circuit make_two_inputs() {
    // Fig. 8a: inverting summing amplifier, two inputs through R1/R2 into the
    // virtual-ground node, feedback R3. Paper parameters.
    CircuitBuilder cb("2IN");
    cb.ground("gnd");
    cb.voltage_source("VIN1", "in1", "gnd", "u0");
    cb.voltage_source("VIN2", "in2", "gnd", "u1");
    cb.resistor("R1", "in1", "inv", 3e3);
    cb.resistor("R2", "in2", "inv", 14e3);
    cb.resistor("R3", "inv", "out", 10e3);
    add_opamp_macromodel(cb, "OA_", "inv", "gnd", "out", 1e6, 20.0);
    cb.probe("POUT", "out", "gnd");
    return cb.build();
}

Circuit make_opamp() {
    // Fig. 8b as used in Section V-A: inverting active low-pass filter.
    // Input through R1, feedback R2 parallel C1; op-amp with Rin/Rout.
    // Cutoff 1/(2*pi*R2*C1) ~ 2.49 kHz, DC gain -R2/R1 = -4.
    CircuitBuilder cb("OA");
    cb.ground("gnd");
    cb.voltage_source("VIN", "in", "gnd", "u0");
    cb.resistor("R1", "in", "inv", 400.0);
    cb.resistor("R2", "inv", "out", 1.6e3);
    cb.capacitor("C1", "inv", "out", 40e-9);
    add_opamp_macromodel(cb, "OA_", "inv", "gnd", "out", 1e6, 20.0);
    cb.probe("POUT", "out", "gnd");
    return cb.build();
}

}  // namespace amsvp::netlist
