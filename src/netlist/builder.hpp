// Programmatic circuit construction.
//
// The builder writes the same constitutive equations the Verilog-AMS
// elaborator produces, so circuits built in tests and circuits parsed from
// source are indistinguishable to the abstraction pipeline:
//
//   resistor R:    I(b) = V(b) / R
//   capacitor C:   I(b) = C * ddt(V(b))
//   inductor L:    V(b) = L * ddt(I(b))
//   vsource:       V(b) = u(t)           (external stimulus)
//   isource:       I(b) = u(t)
//   VCVS:          V(b) = K * V(ctrl)
//   VCCS:          I(b) = G * V(ctrl)
//   probe:         I(b) = 0
#pragma once

#include "netlist/circuit.hpp"

namespace amsvp::netlist {

class CircuitBuilder {
public:
    explicit CircuitBuilder(std::string circuit_name = "circuit");

    /// Declare / fetch a node by name. The first node named "gnd" (or the
    /// node passed to ground()) becomes the reference.
    NodeId node(std::string_view name);
    void ground(std::string_view name);

    BranchId resistor(std::string name, std::string_view pos, std::string_view neg,
                      double ohms);
    BranchId capacitor(std::string name, std::string_view pos, std::string_view neg,
                       double farads);
    BranchId inductor(std::string name, std::string_view pos, std::string_view neg,
                      double henries);
    BranchId voltage_source(std::string name, std::string_view pos, std::string_view neg,
                            std::string input_name);
    BranchId current_source(std::string name, std::string_view pos, std::string_view neg,
                            std::string input_name);
    /// V(this) = gain * V(control_branch).
    BranchId vcvs(std::string name, std::string_view pos, std::string_view neg,
                  std::string_view control_branch, double gain);
    /// I(this) = gain * V(control_branch).
    BranchId vccs(std::string name, std::string_view pos, std::string_view neg,
                  std::string_view control_branch, double gain);
    /// Open branch observing V(pos, neg).
    BranchId probe(std::string name, std::string_view pos, std::string_view neg);

    /// Add a branch with a caller-supplied constitutive equation (used by the
    /// Verilog-AMS elaborator for behavioural contribution statements).
    BranchId generic(std::string name, std::string_view pos, std::string_view neg,
                     expr::Equation equation, DeviceKind kind = DeviceKind::kGeneric);

    /// Finalise. Aborts when validate() reports structural problems.
    [[nodiscard]] Circuit build();

    /// Access the circuit under construction (e.g. to look up ids).
    [[nodiscard]] const Circuit& peek() const { return circuit_; }

private:
    Branch make_branch(std::string name, std::string_view pos, std::string_view neg,
                       DeviceKind kind);

    Circuit circuit_;
};

/// The paper's test circuits (Section V-A), with its published parameters.
/// R = 5 kOhm, C = 25 nF per stage; stimulus input name "u0".
[[nodiscard]] Circuit make_rc_ladder(int stages, double r_ohms = 5e3, double c_farads = 25e-9);

/// Two-inputs summing amplifier (Fig. 8a): R1 = 3k, R2 = 14k, R3 = 10k,
/// with the operational amplifier macromodel of Fig. 8b. Inputs "u0", "u1".
[[nodiscard]] Circuit make_two_inputs();

/// Non-inverting operational amplifier stage (Fig. 8b): R1 = 400, R2 = 1.6k,
/// C1 = 40 nF, Rin = 1 MOhm, Rout = 20 Ohm. Input "u0".
[[nodiscard]] Circuit make_opamp();

}  // namespace amsvp::netlist
