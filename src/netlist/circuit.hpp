// Conservative circuit representation: the graph G = (N, B) of Section IV-A.
//
// A Circuit owns the node/branch topology plus one constitutive (dipole)
// equation per branch. It is produced either programmatically through
// CircuitBuilder or by elaborating a Verilog-AMS module, and consumed by
//  * the abstraction pipeline (which adds Kirchhoff equations),
//  * the SPICE-like conservative engine, and
//  * the ELN engine.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "expr/equation.hpp"

namespace amsvp::netlist {

using NodeId = int;
using BranchId = int;

/// Device classification. The abstraction pipeline treats every branch as a
/// generic dipole equation (the paper's "arbitrary set of constitutive
/// equations"); the kind is kept for netlist reporting and for engines that
/// want device-aware behaviour.
enum class DeviceKind {
    kResistor,
    kCapacitor,
    kInductor,
    kVoltageSource,
    kCurrentSource,
    kVcvs,   ///< voltage-controlled voltage source
    kVccs,   ///< voltage-controlled current source
    kProbe,  ///< open branch (I = 0) inserted to observe a node-pair voltage
    kGeneric,
};

[[nodiscard]] std::string_view to_string(DeviceKind kind);

struct Node {
    std::string name;
};

/// An oriented branch: positive terminal `pos`, negative terminal `neg`.
/// V(b) = potential(pos) - potential(neg); I(b) flows from pos to neg
/// through the device (associated reference directions).
struct Branch {
    std::string name;
    NodeId pos = -1;
    NodeId neg = -1;
    DeviceKind kind = DeviceKind::kGeneric;
    double value = 0.0;               ///< R / C / L / gain, when meaningful
    BranchId control = -1;            ///< controlling branch for VCVS/VCCS
    std::string input;                ///< stimulus name for sources driven by U(t)

    [[nodiscard]] expr::Symbol voltage_symbol() const { return expr::branch_voltage(name); }
    [[nodiscard]] expr::Symbol current_symbol() const { return expr::branch_current(name); }
};

class Circuit {
public:
    explicit Circuit(std::string name = "circuit") : name_(std::move(name)) {}

    [[nodiscard]] const std::string& name() const { return name_; }

    NodeId add_node(std::string node_name);
    /// Find by name; creates nothing.
    [[nodiscard]] std::optional<NodeId> find_node(std::string_view node_name) const;
    /// Find or create.
    NodeId node(std::string_view node_name);

    /// Add a branch along with its constitutive equation.
    BranchId add_branch(Branch branch, expr::Equation dipole_equation);

    [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
    [[nodiscard]] std::size_t branch_count() const { return branches_.size(); }

    [[nodiscard]] const Node& node_info(NodeId id) const;
    [[nodiscard]] const Branch& branch(BranchId id) const;
    [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }
    [[nodiscard]] const std::vector<Branch>& branches() const { return branches_; }

    /// The dipole equation of branch `id`.
    [[nodiscard]] const expr::Equation& dipole_equation(BranchId id) const;

    /// Replace the right-hand side of a branch equation (used by elaboration
    /// to resolve access-function placeholders after all branches exist).
    void set_equation_rhs(BranchId id, expr::ExprPtr rhs);

    /// Mutable branch access for post-construction classification.
    [[nodiscard]] Branch& mutable_branch(BranchId id);
    [[nodiscard]] const std::vector<expr::Equation>& dipole_equations() const {
        return equations_;
    }

    void set_ground(NodeId id);
    [[nodiscard]] NodeId ground() const { return ground_; }
    [[nodiscard]] bool has_ground() const { return ground_ >= 0; }

    /// Names of external stimuli referenced by source branches, in first-use
    /// order.
    [[nodiscard]] std::vector<std::string> input_names() const;

    /// Branches incident to `node` with their orientation sign: +1 when the
    /// branch leaves the node (node == pos), -1 when it enters.
    struct Incidence {
        BranchId branch;
        int sign;
    };
    [[nodiscard]] std::vector<Incidence> incident(NodeId node) const;

    /// First branch whose terminals are exactly {a, b} in either orientation.
    [[nodiscard]] std::optional<BranchId> find_branch_between(NodeId a, NodeId b) const;
    [[nodiscard]] std::optional<BranchId> find_branch(std::string_view branch_name) const;

    /// Structural validation: ground present, all terminals valid, graph
    /// connected, no self-loop branches. Returns problems as text (empty when
    /// valid).
    [[nodiscard]] std::vector<std::string> validate() const;

    /// Multi-line human-readable netlist report.
    [[nodiscard]] std::string describe() const;

private:
    std::string name_;
    std::vector<Node> nodes_;
    std::vector<Branch> branches_;
    std::vector<expr::Equation> equations_;  // parallel to branches_
    NodeId ground_ = -1;
};

}  // namespace amsvp::netlist
