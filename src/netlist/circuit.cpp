#include "netlist/circuit.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace amsvp::netlist {

std::string_view to_string(DeviceKind kind) {
    switch (kind) {
        case DeviceKind::kResistor:
            return "resistor";
        case DeviceKind::kCapacitor:
            return "capacitor";
        case DeviceKind::kInductor:
            return "inductor";
        case DeviceKind::kVoltageSource:
            return "vsource";
        case DeviceKind::kCurrentSource:
            return "isource";
        case DeviceKind::kVcvs:
            return "vcvs";
        case DeviceKind::kVccs:
            return "vccs";
        case DeviceKind::kProbe:
            return "probe";
        case DeviceKind::kGeneric:
            return "generic";
    }
    return "unknown";
}

NodeId Circuit::add_node(std::string node_name) {
    AMSVP_CHECK(!find_node(node_name).has_value(), "duplicate node name");
    nodes_.push_back(Node{std::move(node_name)});
    return static_cast<NodeId>(nodes_.size() - 1);
}

std::optional<NodeId> Circuit::find_node(std::string_view node_name) const {
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        if (nodes_[i].name == node_name) {
            return static_cast<NodeId>(i);
        }
    }
    return std::nullopt;
}

NodeId Circuit::node(std::string_view node_name) {
    if (auto existing = find_node(node_name)) {
        return *existing;
    }
    return add_node(std::string(node_name));
}

BranchId Circuit::add_branch(Branch branch, expr::Equation dipole_equation) {
    AMSVP_CHECK(branch.pos >= 0 && branch.pos < static_cast<NodeId>(nodes_.size()),
                "branch positive terminal out of range");
    AMSVP_CHECK(branch.neg >= 0 && branch.neg < static_cast<NodeId>(nodes_.size()),
                "branch negative terminal out of range");
    AMSVP_CHECK(!find_branch(branch.name).has_value(), "duplicate branch name");
    branches_.push_back(std::move(branch));
    equations_.push_back(std::move(dipole_equation));
    return static_cast<BranchId>(branches_.size() - 1);
}

const Node& Circuit::node_info(NodeId id) const {
    AMSVP_CHECK(id >= 0 && id < static_cast<NodeId>(nodes_.size()), "node id out of range");
    return nodes_[static_cast<std::size_t>(id)];
}

const Branch& Circuit::branch(BranchId id) const {
    AMSVP_CHECK(id >= 0 && id < static_cast<BranchId>(branches_.size()), "branch id out of range");
    return branches_[static_cast<std::size_t>(id)];
}

const expr::Equation& Circuit::dipole_equation(BranchId id) const {
    AMSVP_CHECK(id >= 0 && id < static_cast<BranchId>(equations_.size()),
                "branch id out of range");
    return equations_[static_cast<std::size_t>(id)];
}

void Circuit::set_equation_rhs(BranchId id, expr::ExprPtr rhs) {
    AMSVP_CHECK(id >= 0 && id < static_cast<BranchId>(equations_.size()),
                "branch id out of range");
    equations_[static_cast<std::size_t>(id)].rhs = std::move(rhs);
}

Branch& Circuit::mutable_branch(BranchId id) {
    AMSVP_CHECK(id >= 0 && id < static_cast<BranchId>(branches_.size()), "branch id out of range");
    return branches_[static_cast<std::size_t>(id)];
}

void Circuit::set_ground(NodeId id) {
    AMSVP_CHECK(id >= 0 && id < static_cast<NodeId>(nodes_.size()), "ground id out of range");
    ground_ = id;
}

std::vector<std::string> Circuit::input_names() const {
    std::vector<std::string> out;
    for (const Branch& b : branches_) {
        if (!b.input.empty() && std::find(out.begin(), out.end(), b.input) == out.end()) {
            out.push_back(b.input);
        }
    }
    return out;
}

std::vector<Circuit::Incidence> Circuit::incident(NodeId node) const {
    std::vector<Incidence> out;
    for (std::size_t i = 0; i < branches_.size(); ++i) {
        const Branch& b = branches_[i];
        if (b.pos == node) {
            out.push_back({static_cast<BranchId>(i), +1});
        } else if (b.neg == node) {
            out.push_back({static_cast<BranchId>(i), -1});
        }
    }
    return out;
}

std::optional<BranchId> Circuit::find_branch_between(NodeId a, NodeId b) const {
    for (std::size_t i = 0; i < branches_.size(); ++i) {
        const Branch& br = branches_[i];
        if ((br.pos == a && br.neg == b) || (br.pos == b && br.neg == a)) {
            return static_cast<BranchId>(i);
        }
    }
    return std::nullopt;
}

std::optional<BranchId> Circuit::find_branch(std::string_view branch_name) const {
    for (std::size_t i = 0; i < branches_.size(); ++i) {
        if (branches_[i].name == branch_name) {
            return static_cast<BranchId>(i);
        }
    }
    return std::nullopt;
}

std::vector<std::string> Circuit::validate() const {
    std::vector<std::string> problems;
    if (!has_ground()) {
        problems.push_back("no ground node designated");
    }
    for (const Branch& b : branches_) {
        if (b.pos == b.neg) {
            problems.push_back("branch '" + b.name + "' is a self-loop");
        }
    }
    if (!nodes_.empty()) {
        // Connectivity check via BFS over the undirected graph.
        std::vector<bool> seen(nodes_.size(), false);
        std::vector<NodeId> queue{0};
        seen[0] = true;
        while (!queue.empty()) {
            const NodeId n = queue.back();
            queue.pop_back();
            for (const Incidence& inc : incident(n)) {
                const Branch& b = branch(inc.branch);
                const NodeId other = (b.pos == n) ? b.neg : b.pos;
                if (!seen[static_cast<std::size_t>(other)]) {
                    seen[static_cast<std::size_t>(other)] = true;
                    queue.push_back(other);
                }
            }
        }
        for (std::size_t i = 0; i < nodes_.size(); ++i) {
            if (!seen[i]) {
                problems.push_back("node '" + nodes_[i].name + "' is disconnected");
            }
        }
    }
    return problems;
}

std::string Circuit::describe() const {
    std::string out = "circuit " + name_ + ": " + std::to_string(nodes_.size()) + " nodes, " +
                      std::to_string(branches_.size()) + " branches\n";
    for (std::size_t i = 0; i < branches_.size(); ++i) {
        const Branch& b = branches_[i];
        out += "  " + b.name + " (" + std::string(to_string(b.kind)) + "): " +
               nodes_[static_cast<std::size_t>(b.pos)].name + " -> " +
               nodes_[static_cast<std::size_t>(b.neg)].name + "   " + equations_[i].display() +
               "\n";
    }
    return out;
}

}  // namespace amsvp::netlist
