#include "netlist/topology.hpp"

#include <algorithm>
#include <deque>

#include "support/check.hpp"

namespace amsvp::netlist {

SpanningTree build_spanning_tree(const Circuit& circuit) {
    const std::size_t n = circuit.node_count();
    AMSVP_CHECK(n > 0, "empty circuit");

    SpanningTree tree;
    tree.parent_branch.assign(n, -1);
    tree.parent_node.assign(n, -1);

    std::vector<bool> node_seen(n, false);
    std::vector<bool> branch_in_tree(circuit.branch_count(), false);

    const NodeId root = circuit.has_ground() ? circuit.ground() : 0;
    std::deque<NodeId> queue{root};
    node_seen[static_cast<std::size_t>(root)] = true;

    while (!queue.empty()) {
        const NodeId node = queue.front();
        queue.pop_front();
        for (const Circuit::Incidence& inc : circuit.incident(node)) {
            const Branch& b = circuit.branch(inc.branch);
            const NodeId other = (b.pos == node) ? b.neg : b.pos;
            if (node_seen[static_cast<std::size_t>(other)]) {
                continue;
            }
            node_seen[static_cast<std::size_t>(other)] = true;
            branch_in_tree[static_cast<std::size_t>(inc.branch)] = true;
            tree.tree_branches.push_back(inc.branch);
            tree.parent_branch[static_cast<std::size_t>(other)] = inc.branch;
            tree.parent_node[static_cast<std::size_t>(other)] = node;
            queue.push_back(other);
        }
    }

    for (std::size_t i = 0; i < n; ++i) {
        AMSVP_CHECK(node_seen[i], "spanning tree requires a connected circuit");
    }
    for (std::size_t i = 0; i < circuit.branch_count(); ++i) {
        if (!branch_in_tree[i]) {
            tree.chords.push_back(static_cast<BranchId>(i));
        }
    }
    return tree;
}

namespace {

/// Path from `node` up to the root as a list of (branch, direction) pairs;
/// direction +1 when the branch is traversed pos -> neg while walking upward.
std::vector<LoopEntry> path_to_root(const Circuit& circuit, const SpanningTree& tree,
                                    NodeId node) {
    std::vector<LoopEntry> path;
    NodeId current = node;
    while (tree.parent_branch[static_cast<std::size_t>(current)] != -1) {
        const BranchId bid = tree.parent_branch[static_cast<std::size_t>(current)];
        const Branch& b = circuit.branch(bid);
        // Walking from `current` to its parent.
        const int sign = (b.pos == current) ? +1 : -1;
        path.push_back({bid, sign});
        current = tree.parent_node[static_cast<std::size_t>(current)];
    }
    return path;
}

}  // namespace

std::vector<Loop> fundamental_loops(const Circuit& circuit) {
    return fundamental_loops(circuit, build_spanning_tree(circuit));
}

std::vector<Loop> fundamental_loops(const Circuit& circuit, const SpanningTree& tree) {
    std::vector<Loop> loops;
    loops.reserve(tree.chords.size());

    for (const BranchId chord : tree.chords) {
        const Branch& cb = circuit.branch(chord);
        // Loop orientation: traverse the chord pos -> neg, then return from
        // neg to pos through the tree. The tree path neg->pos equals
        // path(neg -> root) followed by reversed path(pos -> root), after
        // cancelling the common suffix (the shared ancestor segment).
        std::vector<LoopEntry> from_neg = path_to_root(circuit, tree, cb.neg);
        std::vector<LoopEntry> from_pos = path_to_root(circuit, tree, cb.pos);

        // Cancel common tail (same branches near the root).
        while (!from_neg.empty() && !from_pos.empty() &&
               from_neg.back().branch == from_pos.back().branch) {
            from_neg.pop_back();
            from_pos.pop_back();
        }

        Loop loop;
        loop.entries.push_back({chord, +1});
        // neg -> ancestor: branch signs as computed (walking upward).
        for (const LoopEntry& e : from_neg) {
            loop.entries.push_back(e);
        }
        // ancestor -> pos: reverse of pos -> ancestor, signs flipped.
        for (auto it = from_pos.rbegin(); it != from_pos.rend(); ++it) {
            loop.entries.push_back({it->branch, -it->sign});
        }
        loops.push_back(std::move(loop));
    }
    return loops;
}

}  // namespace amsvp::netlist
