// Graph-topology queries backing the Enrichment step (Section IV-B):
//  * nodal analysis needs the incident branches of every node (KCL),
//  * mesh analysis needs the fundamental loops of the graph (KVL), obtained
//    from a spanning tree: every chord (non-tree branch) closes exactly one
//    loop through the tree path connecting its endpoints.
#pragma once

#include <vector>

#include "netlist/circuit.hpp"

namespace amsvp::netlist {

/// A branch traversed inside a loop, with its orientation relative to the
/// traversal direction (+1 when traversed pos->neg).
struct LoopEntry {
    BranchId branch;
    int sign;
};

/// One fundamental loop: the chord first, then the tree path back.
struct Loop {
    std::vector<LoopEntry> entries;
};

/// Spanning tree computed by BFS from the ground node (or node 0 when no
/// ground is set). Requires a connected circuit.
struct SpanningTree {
    std::vector<BranchId> tree_branches;
    std::vector<BranchId> chords;
    /// parent_branch[n] is the tree branch connecting node n towards the
    /// root, -1 for the root itself.
    std::vector<BranchId> parent_branch;
    std::vector<NodeId> parent_node;
};

[[nodiscard]] SpanningTree build_spanning_tree(const Circuit& circuit);

/// All fundamental loops (one per chord). Loop orientation follows the chord
/// pos -> neg direction.
[[nodiscard]] std::vector<Loop> fundamental_loops(const Circuit& circuit);
[[nodiscard]] std::vector<Loop> fundamental_loops(const Circuit& circuit,
                                                  const SpanningTree& tree);

}  // namespace amsvp::netlist
